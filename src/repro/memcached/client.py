"""libmemcache-style client: server selection, multi-get, failure
transparency.

The client owns the key→server mapping (CRC32 by default, modulo for
the §5.5 striping experiment) and degrades gracefully when daemons die:
a failed server makes gets miss and stores no-ops, never an error —
"IMCa can transparently account for failures in MCDs" (§4.4).

With a :class:`HealthPolicy` the client also *tracks* daemon health:
after ``eject_after`` consecutive RPC errors a server is ejected and
skipped outright (zero simulated cost — the fast degraded path), then
re-probed after ``cooldown``.  Rejoin mandates a purge (``flush_all``)
so a daemon that merely blinked — recovered without a cold restart —
can never serve pre-crash data.

With ``replicas > 1`` each key has R distinct owners (primary = the
base selector's pick, the rest via a ketama-ring walk).  Reads spread
over the live replicas with a seeded round-robin; stores, concats,
touches and deletes fan out to **all** replicas, because a purge that
skips a replica leaves stale stat data serveable.  ``replicas == 1``
takes the exact legacy code paths, byte for byte.

With a :class:`~repro.memcached.membership.McdMembership` the server
set is *live*: every selection consults the membership's current key
ring (stable node ids, so "server index" everywhere below means "node
id"), a miss on a remapped key inside a forwarding window consults the
old owner and backfills the new one (demand backfill), and mutations
during a window fan out to both owners so the old copy can never go
stale while it is a legitimate read source.  ``membership is None``
keeps the frozen-list legacy paths, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.memcached.daemon import McValue, MemcachedDaemon, SERVICE, request_size
from repro.memcached.hashing import (
    Crc32Selector,
    KetamaSelector,
    ReplicatedSelector,
    ServerSelector,
)
from repro.net.fabric import Node
from repro.net.rpc import Endpoint, RetryPolicy, RpcError, RpcUnavailable
from repro.sim.events import Event
from repro.util.stats import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.memcached.membership import McdMembership
    from repro.sim.core import Simulator


@dataclass
class HealthPolicy:
    """Client-side MCD health tracking knobs.

    ``retry`` (optional) adds per-call deadlines/backoff to every MCD
    RPC; ejection counts a call as one error after its retries are
    exhausted.  ``purge_on_rejoin`` is the coherence guarantee: the
    probe that readmits a server first wipes it, forcing cold-start
    semantics even when the daemon recovered with its memory intact.
    """

    eject_after: int = 3
    cooldown: float = 0.02
    purge_on_rejoin: bool = True
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.eject_after < 1:
            raise ValueError(f"eject_after must be >= 1: {self.eject_after}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0: {self.cooldown}")


class _ServerHealth:
    """Per-server error tracking (ejected when ``ejected_until >= 0``).

    ``probing`` marks an in-flight half-open rejoin probe: concurrent
    callers that find the cooldown elapsed must not start a second
    probe (double purge, double-counted rejoin) — they skip the server
    until the probe settles.
    """

    __slots__ = ("consecutive_errors", "ejected_until", "probing")

    def __init__(self) -> None:
        self.consecutive_errors = 0
        self.ejected_until = -1.0
        self.probing = False


#: Singleflight sentinel published to followers when the leader's fetch
#: failed: a follower must re-issue its own get rather than inherit a
#: result poisoned by the leader's (possibly server-specific) failure.
_SF_FAILED = object()


class MemcacheClient:
    """A client node's view of the MCD array."""

    def __init__(
        self,
        endpoint: Endpoint,
        servers: list[MemcachedDaemon],
        selector: Optional[ServerSelector] = None,
        health: Optional[HealthPolicy] = None,
        replicas: int = 1,
        rr_seed: int = 0,
        membership: Optional["McdMembership"] = None,
        singleflight: bool = False,
    ) -> None:
        if not servers:
            raise ValueError("need at least one memcached server")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1: {replicas}")
        if membership is not None and replicas > 1:
            raise ValueError("elastic membership requires replicas == 1")
        self.endpoint = endpoint
        self.servers = list(servers)
        self.selector = selector or Crc32Selector()
        self.health = health
        self.replicas = replicas
        #: Live membership view; None freezes the server list (legacy).
        self.membership = membership
        #: Set when the primary selector is the consistent ring — the
        #: only selector that can compute a key's *old* owner, which is
        #: what forwarding windows and write fan-out need.
        self._ketama: Optional[KetamaSelector] = (
            self.selector if membership is not None and isinstance(self.selector, KetamaSelector) else None
        )
        self._health_by_id: dict[int, _ServerHealth] = {}
        #: None when replication is off: every path below checks this
        #: and falls through to the exact legacy code.
        self._replication: Optional[ReplicatedSelector] = (
            ReplicatedSelector(self.selector, replicas) if replicas > 1 else None
        )
        #: Seeded round-robin read spreading (per-client seed, so
        #: different clients start on different replicas; per-key
        #: cursors so every key's reads split evenly).
        self._rr = rr_seed
        self._rr_by_key: dict[str, int] = {}
        self._health = [_ServerHealth() for _ in self.servers]
        #: Fast path (DESIGN §15): key -> Event for every get this
        #: client currently has in flight.  Concurrent identical gets
        #: park on the leader's event instead of issuing their own RPC;
        #: ``None`` keeps every get on the scalar path.
        self._inflight: Optional[dict[str, Event]] = {} if singleflight else None
        self.stats = Counter()
        # Spans share the endpoint's tracer; MCD time observed from the
        # client side (RPC wait included) is attributed to the mcd tier.
        self.tracer = endpoint.tracer

    # -- plumbing ------------------------------------------------------------
    def add_server(self, server: MemcachedDaemon) -> None:
        """Grow the cache bank (§4.4: "Additional caching nodes can be
        easily added").  Keys re-map according to the selector — modulo
        N remaps almost everything; ketama only ~1/(N+1)."""
        self.servers.append(server)
        self._health.append(_ServerHealth())

    def server_for(self, key: str, hint: Optional[int] = None) -> MemcachedDaemon:
        return self._server_at(self._idx_for(key, hint))

    def _idx_for(self, key: str, hint: Optional[int] = None) -> int:
        if self.membership is not None:
            ring = self.membership.ring_ids
            if self._ketama is not None:
                return self._ketama.owner(key, ring)
            # Positional selector over the live list: the naive-resize
            # comparison case — a membership change renumbers the map.
            return ring[self.selector.select(key, len(ring), hint)]
        return self.selector.select(key, len(self.servers), hint)

    def _server_at(self, idx: int) -> MemcachedDaemon:
        if self.membership is not None:
            return self.membership.daemon(idx)
        return self.servers[idx]

    def _health_at(self, idx: int) -> _ServerHealth:
        if self.membership is not None:
            h = self._health_by_id.get(idx)
            if h is None:
                h = self._health_by_id[idx] = _ServerHealth()
            return h
        return self._health[idx]

    def _all_idxs(self) -> list[int]:
        if self.membership is not None:
            return list(self.membership.reachable_ids())
        return list(range(len(self.servers)))

    def _window_targets(self, key: str, hint: Optional[int] = None) -> Optional[list[int]]:
        """``[owner, *old owners]`` while *key* sits in an active
        forwarding window, else None (take the single-owner path).

        Mutations must reach the old copy too — the purge fan-out
        invariant extended across a resize: until the window closes the
        old owner is a legitimate read source (:meth:`_forward_get`),
        so a store or delete that skips it leaves stale data serveable.
        """
        if self.membership is None or self._ketama is None or not self.membership.windows:
            return None
        owner = self._idx_for(key, hint)
        peers = self.membership.window_peers(
            key, owner, self._ketama, self.endpoint.net.sim.now
        )
        if not peers:
            return None
        self.stats.inc("window_writes", len(peers))
        if self.tracer.oplog is not None:
            self.tracer.op_count("window_writes", len(peers))
            self.tracer.op_tag("resize-window-write")
        return [owner] + peers

    def _replicas_for(self, key: str, hint: Optional[int] = None) -> list[int]:
        """All owners of *key* (primary first); ``[primary]`` when off."""
        if self._replication is None:
            return [self._idx_for(key, hint)]
        return self._replication.replicas_for(key, len(self.servers), hint)

    def _read_idx(self, key: str, hint: Optional[int] = None) -> int:
        """The replica a read goes to: seeded per-key round-robin over
        the replicas not currently sitting out an ejection cooldown (all
        of them, if every replica is ejected).  The cursor is per key —
        a cursor shared across keys correlates with periodic batch
        shapes and can park a hot key on one replica, reshuffling load
        instead of splitting it; per-key rotation splits every key's
        reads exactly 1/R.  Cursor memory is one small int per distinct
        key this client has read (bounded by its keyspace)."""
        if self._replication is None:
            return self._idx_for(key, hint)
        replicas = self._replication.replicas_for(key, len(self.servers), hint)
        live = [i for i in replicas if not self._cooling(i)]
        if not live:
            live = replicas
        elif len(live) < len(replicas):
            self.stats.inc("replica_failovers", len(replicas) - len(live))
            if self.tracer.oplog is not None:
                self.tracer.op_count(
                    "replica_failovers", len(replicas) - len(live)
                )
        cursor = self._rr_by_key.get(key, self._rr)
        self._rr_by_key[key] = cursor + 1
        choice = live[cursor % len(live)]
        if choice != replicas[0]:
            self.stats.inc("replica_reads")
        return choice

    def _cooling(self, idx: int) -> bool:
        """True while *idx* is ejected and not yet probeable."""
        if self.health is None:
            return False
        h = self._health_at(idx)
        return h.ejected_until >= 0.0 and (
            self.endpoint.net.sim.now < h.ejected_until or h.probing
        )

    def ejected(self, idx: int) -> bool:
        """Whether server *idx* is currently ejected (for observers)."""
        return self._health_at(idx).ejected_until >= 0.0

    def _call(self, idx: int, op: str, payload: Any) -> Generator:
        server = self._server_at(idx)
        policy = self.health
        h: Optional[_ServerHealth] = None
        if policy is not None:
            h = self._health_at(idx)
            if h.ejected_until >= 0.0:
                if self.endpoint.net.sim.now < h.ejected_until or h.probing:
                    # Fast degraded path: no RPC, no simulated time —
                    # the caller sees a miss instantly.  ``probing``
                    # keeps concurrent batches from racing into a
                    # second half-open probe of the same server.
                    self.stats.inc("ejected_skips")
                    if self.tracer.oplog is not None:
                        self.tracer.op_count("ejected_skips")
                    raise RpcUnavailable(
                        f"{server.node.name} ejected (cooldown in progress)"
                    )
                yield from self._probe_rejoin(idx, op)
        try:
            reply = yield from self.endpoint.call_retry(
                server.node,
                SERVICE,
                (op, payload),
                req_size=request_size(op, payload),
                policy=policy.retry if policy is not None else None,
            )
        except RpcError:
            if h is not None:
                self._note_failure(h)
            raise
        if h is not None:
            h.consecutive_errors = 0
        return reply

    def _note_failure(self, h: _ServerHealth) -> None:
        h.consecutive_errors += 1
        if h.consecutive_errors >= self.health.eject_after and h.ejected_until < 0.0:
            h.ejected_until = self.endpoint.net.sim.now + self.health.cooldown
            h.consecutive_errors = 0
            self.stats.inc("ejections")
            if self.tracer.oplog is not None:
                self.tracer.op_count("mcd_ejections")

    def _probe_rejoin(self, idx: int, op: str) -> Generator:
        """Half-open probe after cooldown: purge, then readmit.

        The purge is mandatory (unless the op *is* the purge): a server
        that revived without a cold restart still holds pre-crash items,
        and SMCache updates issued while it was ejected never reached
        it, so anything it holds is potentially stale.  A failed probe
        re-ejects for another cooldown.
        """
        policy = self.health
        server = self._server_at(idx)
        h = self._health_at(idx)
        h.probing = True
        try:
            if policy.purge_on_rejoin and op != "flush_all":
                try:
                    yield from self.endpoint.call_retry(
                        server.node,
                        SERVICE,
                        ("flush_all", None),
                        req_size=request_size("flush_all", None),
                        policy=policy.retry,
                    )
                except RpcError:
                    h.ejected_until = self.endpoint.net.sim.now + policy.cooldown
                    self.stats.inc("failed_probes")
                    raise
                self.stats.inc("rejoin_purges")
            h.ejected_until = -1.0
            h.consecutive_errors = 0
            self.stats.inc("rejoins")
        finally:
            h.probing = False

    # -- retrieval -------------------------------------------------------------
    def get(self, key: str, hint: Optional[int] = None) -> Generator:
        """Fetch one value; returns :class:`McValue` or None on miss.

        A dead server counts as a miss (plus an ``errors`` stat).

        With singleflight enabled (``IMCaConfig.fastpath``), concurrent
        gets of the same key collapse onto one in-flight fetch: the
        first caller (the *leader*) issues the RPC, later callers
        (*followers*) park on its event and inherit the result.  A
        clean miss is a real result — every scalar caller would have
        missed too — but a *failed* leader fetch re-disperses: each
        follower re-issues its own get, so a poisoned result is never
        shared (and never cached by the callers above).  Followers
        still book their own ``hits``/``misses``, keeping the logical
        counters identical to the scalar path.
        """
        inflight = self._inflight
        if inflight is None:
            value = yield from self._get_scalar(key, hint)
            return value
        flight = inflight.get(key)
        if flight is not None:
            self.stats.inc("sf_follows")
            if self.tracer.oplog is not None:
                self.tracer.op_count("fastpath_sf_follows")
            payload = yield flight
            if payload is not _SF_FAILED:
                self.stats.inc("hits" if payload is not None else "misses")
                return payload
            self.stats.inc("sf_redispersed")
            if self.tracer.oplog is not None:
                self.tracer.op_count("fastpath_sf_redispersed")
            value = yield from self._get_scalar(key, hint)
            return value
        ev = Event(self.endpoint.net.sim)
        inflight[key] = ev
        self.stats.inc("sf_leads")
        failed: list = []
        try:
            value = yield from self._get_scalar(key, hint, failed)
        except BaseException:
            # _get_scalar degrades failures to misses; this guards the
            # table against anything unexpected (e.g. an interrupt).
            del inflight[key]
            ev.succeed(_SF_FAILED)
            raise
        del inflight[key]
        ev.succeed(_SF_FAILED if failed else value)
        return value

    def _get_scalar(
        self, key: str, hint: Optional[int] = None, failed: Optional[list] = None
    ) -> Generator:
        """The scalar get body (*failed*, when given, collects a marker
        if the primary fetch errored — the singleflight poison test)."""
        idx = self._read_idx(key, hint)
        try:
            if self.tracer.enabled:
                with self.tracer.span("mcd", "mc.get"):
                    reply = yield from self._call(idx, "get_multi", [key])
            else:
                reply = yield from self._call(idx, "get_multi", [key])
        except RpcError:
            if failed is not None:
                failed.append(True)
            self.stats.inc("errors")
            if self.membership is None:
                self.stats.inc("misses")
                return None
            reply = {}
        value = reply.get(key)
        if value is None and self.membership is not None:
            value = yield from self._forward_get(key, idx)
        self.stats.inc("hits" if value is not None else "misses")
        return value

    def _forward_get(self, key: str, owner: int) -> Generator:
        """Demand backfill: a miss on a remapped key during a forwarding
        window consults the old owner before falling through to the
        server, and copies any hit onto the current owner.

        The copy uses ``add`` (store-if-absent): a window write may
        already have placed a fresher value on the new owner, and the
        stale forwarded copy must never clobber it.  Returns the value
        or None; the caller books the hit/miss.
        """
        if self._ketama is None or not self.membership.windows:
            return None
        src = self.membership.forward_source(
            key, owner, self._ketama, self.endpoint.net.sim.now
        )
        if src is None:
            return None
        self.stats.inc("forward_probes")
        if self.tracer.oplog is not None:
            self.tracer.op_count("forward_probes")
            self.tracer.op_tag("resize-forward")
        try:
            reply = yield from self._call(src, "get_multi", [key])
        except RpcError:
            self.stats.inc("errors")
            return None
        value = reply.get(key)
        if value is None:
            return None
        self.stats.inc("backfill_hits")
        if self.tracer.oplog is not None:
            self.tracer.op_count("backfill_hits")
            self.tracer.op_tag("resize-backfill")
        try:
            ok = yield from self._call(
                owner, "add", (key, value.value, value.nbytes, value.flags, 0)
            )
            if ok:
                self.stats.inc("backfill_copies")
        except RpcError:
            self.stats.inc("errors")
        return value

    def get_multi(
        self, keys: list[str], hints: Optional[list[Optional[int]]] = None
    ) -> Generator:
        """Fetch many keys, batched one request per server.

        Returns ``{key: McValue}`` containing only the hits.  Batches to
        distinct servers are issued back-to-back (pipelined on the
        client NIC) and all responses are awaited.  Duplicate keys are
        deduplicated before batching — the result dict can only hold one
        entry per key, so counting misses as ``len(keys) - len(out)``
        would book every duplicated hit as a phantom miss.
        """
        if hints is None:
            hints = [None] * len(keys)
        elif len(hints) != len(keys):
            # zip() would silently drop the tail keys from the fetch,
            # turning a caller bug into phantom misses.
            raise ValueError(
                f"get_multi: {len(keys)} keys but {len(hints)} hints"
            )
        inflight = self._inflight
        riders: dict[str, tuple[Event, Optional[int]]] = {}
        flights: dict[str, Event] = {}
        by_server: dict[int, list[str]] = {}
        seen: set[str] = set()
        sim = self.endpoint.net.sim
        for key, hint in zip(keys, hints):
            if key in seen:
                continue
            seen.add(key)
            if inflight is not None:
                flight = inflight.get(key)
                if flight is not None:
                    # Ride the in-flight fetch instead of re-issuing it.
                    riders[key] = (flight, hint)
                    self.stats.inc("sf_follows")
                    if self.tracer.oplog is not None:
                        self.tracer.op_count("fastpath_sf_follows")
                    continue
                flights[key] = inflight[key] = Event(sim)
            idx = self._read_idx(key, hint)
            by_server.setdefault(idx, []).append(key)
        out: dict[str, McValue] = {}
        failed_keys: Optional[set] = set() if inflight is not None else None
        completed = False
        try:
            pending = []
            for idx, batch in by_server.items():
                pending.append(
                    sim.process(
                        self._get_batch(idx, batch, failed_keys), name="mc-multiget"
                    )
                )
            if self.tracer.enabled:
                with self.tracer.span("mcd", "mc.get_multi"):
                    results = yield sim.all_of(pending)
            else:
                results = yield sim.all_of(pending)
            for partial in results.values():
                out.update(partial)
            if (
                self.membership is not None
                and self._ketama is not None
                and self.membership.windows
                and len(out) < len(seen)
            ):
                for idx, batch in by_server.items():
                    for key in batch:
                        if key in out:
                            continue
                        value = yield from self._forward_get(key, idx)
                        if value is not None:
                            out[key] = value
            completed = True
        finally:
            # Publish our fetches to any followers that parked on them
            # (a failed batch re-disperses its riders, never a result —
            # and an aborted multi-get never publishes a phantom miss).
            for key, ev in flights.items():
                del inflight[key]
                if not completed or (failed_keys and key in failed_keys):
                    ev.succeed(_SF_FAILED)
                else:
                    ev.succeed(out.get(key))
        redispersed: set = set()
        if riders:
            results = yield sim.all_of([ev for ev, _ in riders.values()])
            for key, (ev, hint) in riders.items():
                payload = results[ev]
                if payload is _SF_FAILED:
                    # The flight we rode failed: fetch individually
                    # (books its own hit/miss, so the bulk booking
                    # below must skip this key).
                    self.stats.inc("sf_redispersed")
                    if self.tracer.oplog is not None:
                        self.tracer.op_count("fastpath_sf_redispersed")
                    redispersed.add(key)
                    payload = yield from self._get_scalar(key, hint)
                if payload is not None:
                    out[key] = payload
        if redispersed:
            hits = sum(1 for k in out if k not in redispersed)
        else:
            hits = len(out)
        self.stats.inc("hits", hits)
        self.stats.inc("misses", len(seen) - len(redispersed) - hits)
        return out

    def _get_batch(
        self, idx: int, keys: list[str], failed_keys: Optional[set] = None
    ) -> Generator:
        try:
            if self.tracer.enabled:
                with self.tracer.span("mcd", "mc.batch"):
                    reply = yield from self._call(idx, "get_multi", keys)
            else:
                reply = yield from self._call(idx, "get_multi", keys)
        except RpcError:
            self.stats.inc("errors")
            if failed_keys is not None:
                failed_keys.update(keys)
            return {}
        return reply

    # -- replica fan-out -------------------------------------------------------
    def _fanout(
        self, idxs: list[int], op: str, payload: Any, count_replicas: bool = True
    ) -> Generator:
        """Issue *op* to every server in *idxs* concurrently; returns the
        per-server results in *idxs* order (None where the RPC failed).

        Used for stores and invalidations in replicated mode: all
        replicas must see every write and every purge, or a stale copy
        survives on the replica the purge skipped.
        """
        sim = self.endpoint.net.sim

        def one(idx: int) -> Generator:
            try:
                reply = yield from self._call(idx, op, payload)
            except RpcError:
                self.stats.inc("errors")
                return None
            return reply

        if len(idxs) == 1:
            result = yield from one(idxs[0])
            return [result]
        procs = [sim.process(one(i), name="mc-fanout") for i in idxs]
        results = yield sim.all_of(procs)
        if count_replicas:
            self.stats.inc("replica_writes", len(idxs) - 1)
        return [results[p] for p in procs]

    # -- storage ---------------------------------------------------------------
    def set(
        self,
        key: str,
        value: Any,
        nbytes: int,
        flags: int = 0,
        ttl: float = 0,
        hint: Optional[int] = None,
    ) -> Generator:
        """Store; False when the server is down or rejected the item.

        With replication the store fans out to every replica; True when
        at least one replica stored the item (the value is serveable)."""
        if self._replication is not None:
            idxs = self._replicas_for(key, hint)
            if self.tracer.enabled:
                with self.tracer.span("mcd", "mc.set"):
                    results = yield from self._fanout(idxs, "set", (key, value, nbytes, flags, ttl))
            else:
                results = yield from self._fanout(idxs, "set", (key, value, nbytes, flags, ttl))
            self.stats.inc("sets")
            return any(bool(r) for r in results)
        widxs = self._window_targets(key, hint)
        if widxs is not None:
            if self.tracer.enabled:
                with self.tracer.span("mcd", "mc.set"):
                    results = yield from self._fanout(
                        widxs, "set", (key, value, nbytes, flags, ttl), count_replicas=False
                    )
            else:
                results = yield from self._fanout(
                    widxs, "set", (key, value, nbytes, flags, ttl), count_replicas=False
                )
            self.stats.inc("sets")
            return any(bool(r) for r in results)
        idx = self._idx_for(key, hint)
        try:
            if self.tracer.enabled:
                with self.tracer.span("mcd", "mc.set"):
                    ok = yield from self._call(idx, "set", (key, value, nbytes, flags, ttl))
            else:
                ok = yield from self._call(idx, "set", (key, value, nbytes, flags, ttl))
        except RpcError:
            self.stats.inc("errors")
            return False
        self.stats.inc("sets")
        return ok

    def add(self, key: str, value: Any, nbytes: int, flags: int = 0, ttl: float = 0,
            hint: Optional[int] = None) -> Generator:
        """Store only if absent."""
        ok = yield from self._storage("add", key, value, nbytes, flags, ttl, hint)
        return ok

    def replace(self, key: str, value: Any, nbytes: int, flags: int = 0, ttl: float = 0,
                hint: Optional[int] = None) -> Generator:
        """Store only if present."""
        ok = yield from self._storage("replace", key, value, nbytes, flags, ttl, hint)
        return ok

    def _storage(self, op: str, key: str, value: Any, nbytes: int, flags: int,
                 ttl: float, hint: Optional[int]) -> Generator:
        if self._replication is not None:
            results = yield from self._fanout(
                self._replicas_for(key, hint), op, (key, value, nbytes, flags, ttl)
            )
            self.stats.inc("sets")
            return any(bool(r) for r in results)
        widxs = self._window_targets(key, hint)
        if widxs is not None:
            # add/replace resolve against the *current* owner; a
            # successful store is then mirrored onto the old copy with a
            # plain set — fanning the conditional op out verbatim could
            # leave the two owners holding different values (e.g. add
            # succeeding on the empty new node but not on the old one).
            try:
                ok = yield from self._call(widxs[0], op, (key, value, nbytes, flags, ttl))
            except RpcError:
                self.stats.inc("errors")
                return False
            self.stats.inc("sets")
            if ok:
                yield from self._fanout(
                    widxs[1:], "set", (key, value, nbytes, flags, ttl), count_replicas=False
                )
            return ok
        idx = self._idx_for(key, hint)
        try:
            ok = yield from self._call(idx, op, (key, value, nbytes, flags, ttl))
        except RpcError:
            self.stats.inc("errors")
            return False
        self.stats.inc("sets")
        return ok

    def cas(self, key: str, value: Any, nbytes: int, cas: int, flags: int = 0,
            ttl: float = 0, hint: Optional[int] = None) -> Generator:
        """Compare-and-swap; returns 'STORED' / 'EXISTS' / 'NOT_FOUND' /
        'NOT_STORED' (allocation failure), or 'NOT_FOUND' when the
        server is down.

        cas targets the **primary** replica only: CAS tokens are
        per-engine counters, so a token from one replica can never match
        on another — fanning out would always answer EXISTS there.
        """
        idx = self._idx_for(key, hint)
        try:
            verdict = yield from self._call(idx, "cas", (key, value, nbytes, cas, flags, ttl))
        except RpcError:
            self.stats.inc("errors")
            return "NOT_FOUND"
        if verdict == "STORED":
            yield from self._invalidate_window_peers(key, hint)
        return verdict

    def _invalidate_window_peers(self, key: str, hint: Optional[int]) -> Generator:
        """cas/incr/decr mutate the primary copy only (their tokens and
        counters are per-engine), so during a forwarding window the old
        owner's copy is invalidated rather than updated — a forward
        probe must never serve the pre-mutation value."""
        targets = self._window_targets(key, hint)
        if targets is None:
            return
        for peer in targets[1:]:
            try:
                yield from self._call(peer, "delete", key)
            except RpcError:
                self.stats.inc("errors")

    def append(self, key: str, value: Any, nbytes: int, hint: Optional[int] = None) -> Generator:
        ok = yield from self._concat("append", key, value, nbytes, hint)
        return ok

    def prepend(self, key: str, value: Any, nbytes: int, hint: Optional[int] = None) -> Generator:
        ok = yield from self._concat("prepend", key, value, nbytes, hint)
        return ok

    def _concat(self, op: str, key: str, value: Any, nbytes: int,
                hint: Optional[int]) -> Generator:
        if self._replication is not None:
            results = yield from self._fanout(
                self._replicas_for(key, hint), op, (key, value, nbytes)
            )
            return any(bool(r) for r in results)
        widxs = self._window_targets(key, hint)
        if widxs is not None:
            # Concats commute with the coherence invariant: whichever
            # copies exist get the same bytes appended.
            results = yield from self._fanout(
                widxs, op, (key, value, nbytes), count_replicas=False
            )
            return any(bool(r) for r in results)
        idx = self._idx_for(key, hint)
        try:
            ok = yield from self._call(idx, op, (key, value, nbytes))
        except RpcError:
            self.stats.inc("errors")
            return False
        return ok

    def incr(self, key: str, delta: int = 1, hint: Optional[int] = None) -> Generator:
        """Numeric increment; None on miss or dead server.

        Like cas, incr/decr stay on the primary replica: replicated
        counters would drift apart under read-spreading, so counter
        keys are treated as unreplicated."""
        idx = self._idx_for(key, hint)
        try:
            value = yield from self._call(idx, "incr", (key, delta))
        except RpcError:
            self.stats.inc("errors")
            return None
        if value is not None:
            yield from self._invalidate_window_peers(key, hint)
        return value

    def decr(self, key: str, delta: int = 1, hint: Optional[int] = None) -> Generator:
        idx = self._idx_for(key, hint)
        try:
            value = yield from self._call(idx, "decr", (key, delta))
        except RpcError:
            self.stats.inc("errors")
            return None
        if value is not None:
            yield from self._invalidate_window_peers(key, hint)
        return value

    def touch(self, key: str, ttl: float, hint: Optional[int] = None) -> Generator:
        if self._replication is not None:
            results = yield from self._fanout(
                self._replicas_for(key, hint), "touch", (key, ttl)
            )
            return any(bool(r) for r in results)
        widxs = self._window_targets(key, hint)
        if widxs is not None:
            results = yield from self._fanout(
                widxs, "touch", (key, ttl), count_replicas=False
            )
            return any(bool(r) for r in results)
        idx = self._idx_for(key, hint)
        try:
            ok = yield from self._call(idx, "touch", (key, ttl))
        except RpcError:
            self.stats.inc("errors")
            return False
        return ok

    def delete(self, key: str, hint: Optional[int] = None) -> Generator:
        """Remove *key*; with replication the delete reaches **every**
        replica — a skipped replica would keep serving the stale value."""
        if self._replication is not None:
            with self.tracer.span("mcd", "mc.delete"):
                results = yield from self._fanout(
                    self._replicas_for(key, hint), "delete", key
                )
            ok = any(bool(r) for r in results)
            if ok:
                self.stats.inc("deletes")
            return ok
        widxs = self._window_targets(key, hint)
        if widxs is not None:
            with self.tracer.span("mcd", "mc.delete"):
                results = yield from self._fanout(
                    widxs, "delete", key, count_replicas=False
                )
            ok = any(bool(r) for r in results)
            if ok:
                self.stats.inc("deletes")
            return ok
        idx = self._idx_for(key, hint)
        try:
            with self.tracer.span("mcd", "mc.delete"):
                ok = yield from self._call(idx, "delete", key)
        except RpcError:
            self.stats.inc("errors")
            return False
        self.stats.inc("deletes")
        return ok

    def delete_multi(self, keys: list[str], hints: Optional[list[Optional[int]]] = None) -> Generator:
        """Best-effort bulk delete, batched one RPC per server (used by
        SMCache purges, which may cover every block of a file).

        In replicated mode every key's batch lands on **all** of its
        replicas; ``deletes`` counts primary-copy removals (the legacy
        meaning) and ``replica_deletes`` the extra replica copies.
        """
        if hints is None:
            hints = [None] * len(keys)
        elif len(hints) != len(keys):
            # zip() would silently skip deleting the tail keys — a
            # coherence hole, not just a perf bug, for SMCache purges.
            raise ValueError(
                f"delete_multi: {len(keys)} keys but {len(hints)} hints"
            )
        primary: dict[int, list[str]] = {}
        extras: dict[int, list[str]] = {}
        for key, hint in zip(keys, hints):
            # During a forwarding window a key's delete must also reach
            # its old owner — same invariant as the replica fan-out.
            idxs = self._window_targets(key, hint) or self._replicas_for(key, hint)
            primary.setdefault(idxs[0], []).append(key)
            for i in idxs[1:]:
                extras.setdefault(i, []).append(key)
        deleted = 0
        with self.tracer.span("mcd", "mc.delete_multi"):
            for idx, batch in primary.items():
                try:
                    deleted += yield from self._call(idx, "delete_multi", batch)
                except RpcError:
                    self.stats.inc("errors")
            for idx, batch in extras.items():
                try:
                    n = yield from self._call(idx, "delete_multi", batch)
                    self.stats.inc("replica_deletes", n)
                except RpcError:
                    self.stats.inc("errors")
        self.stats.inc("deletes", deleted)
        return deleted

    def flush_all(self) -> Generator:
        for idx in self._all_idxs():
            try:
                yield from self._call(idx, "flush_all", None)
            except RpcError:
                self.stats.inc("errors")

    def stats_all(self) -> Generator:
        """Collect engine stats from every live server."""
        out = []
        for idx in self._all_idxs():
            try:
                d = yield from self._call(idx, "stats", None)
            except RpcError:
                d = None
            out.append(d)
        return out
