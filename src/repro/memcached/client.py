"""libmemcache-style client: server selection, multi-get, failure
transparency.

The client owns the key→server mapping (CRC32 by default, modulo for
the §5.5 striping experiment) and degrades gracefully when daemons die:
a failed server makes gets miss and stores no-ops, never an error —
"IMCa can transparently account for failures in MCDs" (§4.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.memcached.daemon import McValue, MemcachedDaemon, SERVICE, request_size
from repro.memcached.hashing import Crc32Selector, ServerSelector
from repro.net.fabric import Node
from repro.net.rpc import Endpoint, RpcUnavailable
from repro.util.stats import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class MemcacheClient:
    """A client node's view of the MCD array."""

    def __init__(
        self,
        endpoint: Endpoint,
        servers: list[MemcachedDaemon],
        selector: Optional[ServerSelector] = None,
    ) -> None:
        if not servers:
            raise ValueError("need at least one memcached server")
        self.endpoint = endpoint
        self.servers = list(servers)
        self.selector = selector or Crc32Selector()
        self.stats = Counter()
        # Spans share the endpoint's tracer; MCD time observed from the
        # client side (RPC wait included) is attributed to the mcd tier.
        self.tracer = endpoint.tracer

    # -- plumbing ------------------------------------------------------------
    def add_server(self, server: MemcachedDaemon) -> None:
        """Grow the cache bank (§4.4: "Additional caching nodes can be
        easily added").  Keys re-map according to the selector — modulo
        N remaps almost everything; ketama only ~1/(N+1)."""
        self.servers.append(server)

    def server_for(self, key: str, hint: Optional[int] = None) -> MemcachedDaemon:
        idx = self.selector.select(key, len(self.servers), hint)
        return self.servers[idx]

    def _call(self, server: MemcachedDaemon, op: str, payload: Any) -> Generator:
        reply = yield from self.endpoint.call(
            server.node, SERVICE, (op, payload), req_size=request_size(op, payload)
        )
        return reply

    # -- retrieval -------------------------------------------------------------
    def get(self, key: str, hint: Optional[int] = None) -> Generator:
        """Fetch one value; returns :class:`McValue` or None on miss.

        A dead server counts as a miss (plus an ``errors`` stat)."""
        server = self.server_for(key, hint)
        try:
            if self.tracer.enabled:
                with self.tracer.span("mcd", "mc.get"):
                    reply = yield from self._call(server, "get_multi", [key])
            else:
                reply = yield from self._call(server, "get_multi", [key])
        except RpcUnavailable:
            self.stats.inc("errors")
            self.stats.inc("misses")
            return None
        value = reply.get(key)
        self.stats.inc("hits" if value is not None else "misses")
        return value

    def get_multi(
        self, keys: list[str], hints: Optional[list[Optional[int]]] = None
    ) -> Generator:
        """Fetch many keys, batched one request per server.

        Returns ``{key: McValue}`` containing only the hits.  Batches to
        distinct servers are issued back-to-back (pipelined on the
        client NIC) and all responses are awaited.
        """
        if hints is None:
            hints = [None] * len(keys)
        by_server: dict[int, list[str]] = {}
        for key, hint in zip(keys, hints):
            idx = self.selector.select(key, len(self.servers), hint)
            by_server.setdefault(idx, []).append(key)
        out: dict[str, McValue] = {}
        sim = self.endpoint.net.sim
        pending = []
        for idx, batch in by_server.items():
            pending.append(sim.process(self._get_batch(idx, batch), name="mc-multiget"))
        if self.tracer.enabled:
            with self.tracer.span("mcd", "mc.get_multi"):
                results = yield sim.all_of(pending)
        else:
            results = yield sim.all_of(pending)
        for partial in results.values():
            out.update(partial)
        hits = len(out)
        self.stats.inc("hits", hits)
        self.stats.inc("misses", len(keys) - hits)
        return out

    def _get_batch(self, idx: int, keys: list[str]) -> Generator:
        try:
            if self.tracer.enabled:
                with self.tracer.span("mcd", "mc.batch"):
                    reply = yield from self._call(self.servers[idx], "get_multi", keys)
            else:
                reply = yield from self._call(self.servers[idx], "get_multi", keys)
        except RpcUnavailable:
            self.stats.inc("errors")
            return {}
        return reply

    # -- storage ---------------------------------------------------------------
    def set(
        self,
        key: str,
        value: Any,
        nbytes: int,
        flags: int = 0,
        ttl: float = 0,
        hint: Optional[int] = None,
    ) -> Generator:
        """Store; False when the server is down or rejected the item."""
        server = self.server_for(key, hint)
        try:
            if self.tracer.enabled:
                with self.tracer.span("mcd", "mc.set"):
                    ok = yield from self._call(server, "set", (key, value, nbytes, flags, ttl))
            else:
                ok = yield from self._call(server, "set", (key, value, nbytes, flags, ttl))
        except RpcUnavailable:
            self.stats.inc("errors")
            return False
        self.stats.inc("sets")
        return ok

    def add(self, key: str, value: Any, nbytes: int, flags: int = 0, ttl: float = 0,
            hint: Optional[int] = None) -> Generator:
        """Store only if absent."""
        ok = yield from self._storage("add", key, value, nbytes, flags, ttl, hint)
        return ok

    def replace(self, key: str, value: Any, nbytes: int, flags: int = 0, ttl: float = 0,
                hint: Optional[int] = None) -> Generator:
        """Store only if present."""
        ok = yield from self._storage("replace", key, value, nbytes, flags, ttl, hint)
        return ok

    def _storage(self, op: str, key: str, value: Any, nbytes: int, flags: int,
                 ttl: float, hint: Optional[int]) -> Generator:
        server = self.server_for(key, hint)
        try:
            ok = yield from self._call(server, op, (key, value, nbytes, flags, ttl))
        except RpcUnavailable:
            self.stats.inc("errors")
            return False
        self.stats.inc("sets")
        return ok

    def cas(self, key: str, value: Any, nbytes: int, cas: int, flags: int = 0,
            ttl: float = 0, hint: Optional[int] = None) -> Generator:
        """Compare-and-swap; returns 'STORED' / 'EXISTS' / 'NOT_FOUND',
        or 'NOT_FOUND' when the server is down."""
        server = self.server_for(key, hint)
        try:
            verdict = yield from self._call(server, "cas", (key, value, nbytes, cas, flags, ttl))
        except RpcUnavailable:
            self.stats.inc("errors")
            return "NOT_FOUND"
        return verdict

    def append(self, key: str, value: Any, nbytes: int, hint: Optional[int] = None) -> Generator:
        ok = yield from self._concat("append", key, value, nbytes, hint)
        return ok

    def prepend(self, key: str, value: Any, nbytes: int, hint: Optional[int] = None) -> Generator:
        ok = yield from self._concat("prepend", key, value, nbytes, hint)
        return ok

    def _concat(self, op: str, key: str, value: Any, nbytes: int,
                hint: Optional[int]) -> Generator:
        server = self.server_for(key, hint)
        try:
            ok = yield from self._call(server, op, (key, value, nbytes))
        except RpcUnavailable:
            self.stats.inc("errors")
            return False
        return ok

    def incr(self, key: str, delta: int = 1, hint: Optional[int] = None) -> Generator:
        """Numeric increment; None on miss or dead server."""
        server = self.server_for(key, hint)
        try:
            value = yield from self._call(server, "incr", (key, delta))
        except RpcUnavailable:
            self.stats.inc("errors")
            return None
        return value

    def decr(self, key: str, delta: int = 1, hint: Optional[int] = None) -> Generator:
        server = self.server_for(key, hint)
        try:
            value = yield from self._call(server, "decr", (key, delta))
        except RpcUnavailable:
            self.stats.inc("errors")
            return None
        return value

    def touch(self, key: str, ttl: float, hint: Optional[int] = None) -> Generator:
        server = self.server_for(key, hint)
        try:
            ok = yield from self._call(server, "touch", (key, ttl))
        except RpcUnavailable:
            self.stats.inc("errors")
            return False
        return ok

    def delete(self, key: str, hint: Optional[int] = None) -> Generator:
        server = self.server_for(key, hint)
        try:
            with self.tracer.span("mcd", "mc.delete"):
                ok = yield from self._call(server, "delete", key)
        except RpcUnavailable:
            self.stats.inc("errors")
            return False
        self.stats.inc("deletes")
        return ok

    def delete_multi(self, keys: list[str], hints: Optional[list[Optional[int]]] = None) -> Generator:
        """Best-effort bulk delete, batched one RPC per server (used by
        SMCache purges, which may cover every block of a file)."""
        if hints is None:
            hints = [None] * len(keys)
        by_server: dict[int, list[str]] = {}
        for key, hint in zip(keys, hints):
            idx = self.selector.select(key, len(self.servers), hint)
            by_server.setdefault(idx, []).append(key)
        deleted = 0
        with self.tracer.span("mcd", "mc.delete_multi"):
            for idx, batch in by_server.items():
                try:
                    deleted += yield from self._call(self.servers[idx], "delete_multi", batch)
                except RpcUnavailable:
                    self.stats.inc("errors")
        self.stats.inc("deletes", deleted)
        return deleted

    def flush_all(self) -> Generator:
        for server in self.servers:
            try:
                yield from self._call(server, "flush_all", None)
            except RpcUnavailable:
                self.stats.inc("errors")

    def stats_all(self) -> Generator:
        """Collect engine stats from every live server."""
        out = []
        for server in self.servers:
            try:
                d = yield from self._call(server, "stats", None)
            except RpcUnavailable:
                d = None
            out.append(d)
        return out
