"""A memcached daemon running on a simulated node.

"Memcached is usually run as a daemon on spare nodes ... The Memcache
daemon may be accessed through TCP/IP connections" (§2.2).  The daemon
wraps a :class:`MemcachedEngine` behind one RPC service.  Per-op CPU is
tiny compared to a file-server op — an event-loop hash-table lookup —
which is precisely why a bank of MCDs scales past the GlusterFS server
(§4.4 "Latency for requests read from the cache is lower").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.memcached.engine import MemcachedEngine, McError
from repro.memcached.tenancy import TenantArbiter
from repro.net.fabric import Network, Node
from repro.net.rpc import Endpoint, RpcCall
from repro.obs.trace import NULL_TRACER
from repro.sim.station import BatchGate
from repro.util.units import GiB, USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

#: RPC service name.
SERVICE = "memcached"

#: Per-command CPU cost (hash lookup + event loop) and per-byte copy.
OP_CPU = 3 * USEC
COPY_PER_BYTE = 1.0 / (4 * GiB)

#: Wire framing per key/value in requests/responses.
KEY_WIRE_OVERHEAD = 24
VALUE_WIRE_OVERHEAD = 40


@dataclass
class McValue:
    """Client-visible stored value."""

    value: Any
    nbytes: int
    flags: int
    cas: int


class MemcachedDaemon:
    """One MCD: engine + RPC service on its node."""

    def __init__(
        self,
        sim: "Simulator",
        net: Network,
        node: Node,
        mem_limit: int,
        tracer=NULL_TRACER,
        tenancy_factory: Optional[Callable[[int], TenantArbiter]] = None,
        fastpath: bool = False,
    ) -> None:
        self.sim = sim
        self.node = node
        self.mem_limit = mem_limit
        #: Fast path (DESIGN §15): same-instant get bursts retire their
        #: event-loop CPU through one ``run_batch`` on the node's CPU.
        self.cpu_gate: Optional[BatchGate] = BatchGate(node.cpu) if fastpath else None
        #: Builds a *fresh* arbiter per engine (mem_limit -> arbiter):
        #: arbitration state is process state and must die with it.
        self.tenancy_factory = tenancy_factory
        self.engine = MemcachedEngine(
            mem_limit,
            clock=lambda: sim.now,
            tenancy=tenancy_factory(mem_limit) if tenancy_factory else None,
        )
        self.endpoint = Endpoint(net, node, tracer=tracer)
        self.tracer = tracer
        self.endpoint.register(SERVICE, self._handle)
        #: Lifecycle counters for the fault layer.
        self.crashes = 0
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.node.alive

    def kill(self) -> None:
        """Fail the node; in-flight and future requests error out.

        §4.4: "Failures in MCDs do not impact correctness" — the client
        treats errors as misses."""
        if self.node.alive:
            self.crashes += 1
        self.node.fail()

    def restart(self) -> None:
        """Recover with an empty cache (a restarted daemon is cold).

        The engine is *rebuilt*, not flushed: ``flush_all`` unlinks
        items but keeps slab pages assigned to their classes and the CAS
        counter running, whereas a real restart loses the process image.
        A fresh engine makes the cold start provable — no item, page
        assignment, or CAS value survives.
        """
        sim = self.sim
        self.engine = MemcachedEngine(
            self.mem_limit,
            clock=lambda: sim.now,
            tenancy=self.tenancy_factory(self.mem_limit) if self.tenancy_factory else None,
        )
        self.restarts += 1
        self.node.recover()

    # -- RPC handler ---------------------------------------------------------
    def _handle(self, call: RpcCall):
        if self.tracer.enabled:
            with self.tracer.span("mcd", f"mcd.{call.args[0]}"):
                result = yield from self._serve(call)
            return result
        result = yield from self._serve(call)
        return result

    def _serve(self, call: RpcCall):
        op, payload = call.args
        cpu = self.node.cpu
        eng = self.engine
        if op == "get_multi":
            keys: list[str] = payload
            gate = self.cpu_gate
            if gate is not None:
                yield from gate.admit(OP_CPU * max(1, len(keys)))
            else:
                yield cpu.run(OP_CPU * max(1, len(keys)))
            items = eng.get_multi(keys)
            resp_bytes = sum(
                it.nbytes + VALUE_WIRE_OVERHEAD + len(k) for k, it in items.items()
            )
            if resp_bytes:
                yield cpu.run(COPY_PER_BYTE * resp_bytes)
            reply = {
                k: McValue(it.value, it.nbytes, it.flags, it.cas) for k, it in items.items()
            }
            return reply, resp_bytes
        if op in ("set", "add", "replace"):
            key, value, nbytes, flags, ttl = payload
            yield cpu.run(OP_CPU + COPY_PER_BYTE * nbytes)
            ok = getattr(eng, op)(key, value, nbytes, flags, ttl)
            return ok, 8
        if op in ("append", "prepend"):
            key, value, nbytes = payload
            yield cpu.run(OP_CPU + COPY_PER_BYTE * nbytes)
            ok = getattr(eng, op)(key, value, nbytes)
            return ok, 8
        if op == "cas":
            key, value, nbytes, cas, flags, ttl = payload
            yield cpu.run(OP_CPU + COPY_PER_BYTE * nbytes)
            return eng.cas(key, value, nbytes, cas, flags, ttl), 8
        if op == "delete":
            yield cpu.run(OP_CPU)
            return eng.delete(payload), 8
        if op == "delete_multi":
            keys = payload
            yield cpu.run(OP_CPU * max(1, len(keys)))
            return sum(1 for k in keys if eng.delete(k)), 8
        if op == "incr":
            key, delta = payload
            yield cpu.run(OP_CPU)
            return eng.incr(key, delta), 8
        if op == "decr":
            key, delta = payload
            yield cpu.run(OP_CPU)
            return eng.decr(key, delta), 8
        if op == "touch":
            key, ttl = payload
            yield cpu.run(OP_CPU)
            return eng.touch(key, ttl), 8
        if op == "flush_all":
            yield cpu.run(OP_CPU)
            eng.flush_all()
            return True, 8
        if op == "scan":
            cursor, limit, with_values = payload
            yield cpu.run(OP_CPU * max(1, limit))
            next_cursor, entries = eng.scan(cursor, limit)
            if not with_values:
                entries = [(k, None, nbytes, flags, ttl) for k, _v, nbytes, flags, ttl in entries]
                resp_bytes = sum(len(e[0]) + KEY_WIRE_OVERHEAD for e in entries)
            else:
                resp_bytes = sum(e[2] + VALUE_WIRE_OVERHEAD + len(e[0]) for e in entries)
            if resp_bytes:
                yield cpu.run(COPY_PER_BYTE * resp_bytes)
            return (next_cursor, entries), resp_bytes
        if op == "stats":
            yield cpu.run(OP_CPU)
            return eng.stat_dict(), 512
        raise McError(f"unknown command {op!r}")


def request_size(op: str, payload: Any) -> int:
    """Wire size of a request (keys + values + framing)."""
    if op == "get_multi":
        return sum(len(k) + KEY_WIRE_OVERHEAD for k in payload)
    if op in ("set", "add", "replace"):
        key, _value, nbytes, _flags, _ttl = payload
        return len(key) + KEY_WIRE_OVERHEAD + nbytes
    if op in ("append", "prepend"):
        key, _value, nbytes = payload
        return len(key) + KEY_WIRE_OVERHEAD + nbytes
    if op == "cas":
        key, _value, nbytes, _cas, _flags, _ttl = payload
        return len(key) + KEY_WIRE_OVERHEAD + nbytes
    if op == "delete":
        return len(payload) + KEY_WIRE_OVERHEAD
    if op == "delete_multi":
        return sum(len(k) + KEY_WIRE_OVERHEAD for k in payload)
    if op in ("incr", "decr", "touch"):
        return len(payload[0]) + KEY_WIRE_OVERHEAD
    return KEY_WIRE_OVERHEAD
