"""The memcached item store: hash table + per-class LRU + lazy expiry.

Implements the command set the paper names (§2.2: "set, replace,
delete, prepend and append", plus get/gets/cas/add/incr/decr/
flush_all/stats) over the slab allocator.  Eviction is per slab class
from the LRU tail; expiration is lazy ("objects are evicted when the
cache is full ... or a request to fetch a data element ... and the time
for the object in the cache has expired").

Values are opaque Python objects with an explicit ``nbytes`` so the
IMCa layer can cache lightweight block descriptors while memory
accounting behaves as if the literal bytes were stored.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.memcached.slabs import SlabAllocator, SlabClass
from repro.memcached.tenancy import TenantAccount, TenantArbiter
from repro.util.stats import Counter

#: Real memcached's limits: 250-byte keys, 1 MiB values (§2.2 rounds the
#: key limit to "256 bytes"; the actual constant is 250).
MAX_KEY_LEN = 250
#: Per-item metadata overhead charged to the slab chunk (struct item,
#: key bytes, CAS, flags) — memcached's is ~48-80 bytes plus key.
ITEM_OVERHEAD = 56

#: Whitespace check for :meth:`McEngine._check_key`, one C-level scan
#: instead of a per-character generator (the old ``any(c.isspace()...)``
#: was the hottest non-kernel line under ``repro bench --profile``).
#: ``\s`` plus the str.isspace-only extras (U+001C..1F, U+0085) keeps
#: the accepted key set exactly the same.
_WS_RE = re.compile("[\\s\x1c-\x1f\x85]")


class McError(Exception):
    """CLIENT_ERROR-style protocol violation (bad key, oversized value)."""


@dataclass
class Item:
    """One stored object."""

    key: str
    value: Any
    nbytes: int
    flags: int
    exptime: float  # absolute expiry time; 0 = never
    cas: int
    slab: SlabClass
    #: Monotone insertion sequence number; anchors :meth:`MemcachedEngine.scan`
    #: cursors (``_items`` insertion order == seq order, so a cursor names a
    #: position that survives concurrent unlinks).
    seq: int = 0
    #: Owning tenant account when the engine runs with a TenantArbiter.
    tenant: Optional[TenantAccount] = field(default=None, repr=False)


class MemcachedEngine:
    """A single daemon's item store."""

    def __init__(
        self,
        mem_limit: int,
        clock: Callable[[], float],
        growth_factor: float = 1.25,
        tenancy: Optional[TenantArbiter] = None,
    ) -> None:
        self.slabs = SlabAllocator(mem_limit, growth_factor=growth_factor)
        self.clock = clock
        self.tenancy = tenancy
        self._items: dict[str, Item] = {}
        #: Per-slab-class LRU: OrderedDict key -> Item, MRU at the end.
        self._lru: dict[int, OrderedDict[str, Item]] = {}
        #: Per-class count of items carrying a TTL — gates the expired-
        #: first reclaim walk so TTL-free workloads (every default
        #: figure) never pay for it.
        self._ttl_items: dict[int, int] = {}
        self._cas = 0
        self._seq = 0
        self.stats = Counter()

    # -- helpers -----------------------------------------------------------
    def _check_key(self, key: str) -> None:
        if not key or len(key) > MAX_KEY_LEN:
            raise McError(f"bad key length {len(key)}")
        if _WS_RE.search(key) is not None:
            raise McError("key contains whitespace")

    def _total_size(self, key: str, nbytes: int) -> int:
        return ITEM_OVERHEAD + len(key) + nbytes

    def _unlink(self, item: Item, cause: str = "drop") -> None:
        del self._items[item.key]
        del self._lru[item.slab.index][item.key]
        if item.exptime != 0:
            self._ttl_items[item.slab.index] -= 1
        if item.tenant is not None:
            self.tenancy.on_unlink(item, item.tenant, cause)
        self.slabs.free(item.slab)
        self.stats.inc("curr_items", -1)
        self.stats.inc("bytes", -item.nbytes)

    def _expired(self, item: Item) -> bool:
        return item.exptime != 0 and self.clock() >= item.exptime

    def _evict_one(self, cls: SlabClass, requester: Optional[TenantAccount] = None) -> bool:
        """Free one chunk of *cls* for an OOM; False if the class is empty.

        Expired items are reclaimed before any live item is evicted —
        real memcached's behaviour, and the accounting the tenant
        arbiter depends on: an expired-but-unreclaimed item is free
        memory, not cache pressure, so charging it as an ``eviction``
        would make the arbiter chase phantom demand.  ``reclaimed`` and
        ``evictions`` are disjoint counters (and both disjoint from the
        read path's lazy ``expired``).  The walk only runs when the
        class holds TTL'd items at all (``_ttl_items`` gate).
        """
        lru = self._lru.get(cls.index)
        if not lru:
            return False
        if self._ttl_items.get(cls.index, 0) > 0:
            for victim in lru.values():
                if self._expired(victim):
                    self._unlink(victim, "reclaim")
                    self.stats.inc("reclaimed")
                    return True
        victim = None
        if self.tenancy is not None and requester is not None:
            victim = self.tenancy.pick_victim(cls.index, requester)
        if victim is None:
            victim = next(iter(lru.values()))
        self._unlink(victim, "evict")
        self.stats.inc("evictions")
        return True

    def _allocate(self, key: str, nbytes: int) -> Optional[SlabClass]:
        size = self._total_size(key, nbytes)
        cls = self.slabs.class_for(size)
        if cls is None:
            raise McError(f"object too large for cache ({nbytes} bytes)")
        requester = self.tenancy.tenant_of(key) if self.tenancy is not None else None
        while True:
            got = self.slabs.alloc(size)
            if got is not None:
                return got
            # Out of memory: lazily evict from this size class.  When the
            # class owns no items (all pages belong to other classes),
            # memcached answers SERVER_ERROR; we report a failed store.
            if not self._evict_one(cls, requester):
                self.stats.inc("out_of_memory")
                return None

    def _link(self, key: str, value: Any, nbytes: int, flags: int, ttl: float) -> Optional[Item]:
        cls = self._allocate(key, nbytes)
        if cls is None:
            return None
        return self._insert(cls, key, value, nbytes, flags, ttl)

    def _insert(self, cls: SlabClass, key: str, value: Any, nbytes: int,
                flags: int, ttl: float) -> Item:
        """Link a new item into an already-allocated chunk of *cls*."""
        self._cas += 1
        self._seq += 1
        exptime = self.clock() + ttl if ttl > 0 else 0.0
        item = Item(key, value, nbytes, flags, exptime, self._cas, cls, self._seq)
        self._items[key] = item
        self._lru.setdefault(cls.index, OrderedDict())[key] = item
        if exptime != 0:
            self._ttl_items[cls.index] = self._ttl_items.get(cls.index, 0) + 1
        if self.tenancy is not None:
            item.tenant = self.tenancy.on_insert(item)
        self.stats.inc("curr_items")
        self.stats.inc("total_items")
        self.stats.inc("bytes", nbytes)
        return item

    def _live_item(self, key: str) -> Optional[Item]:
        item = self._items.get(key)
        if item is None:
            return None
        if self._expired(item):
            self._unlink(item, "expire")
            self.stats.inc("expired")
            return None
        return item

    def _touch_lru(self, item: Item) -> None:
        self._lru[item.slab.index].move_to_end(item.key)
        if item.tenant is not None:
            self.tenancy.on_touch(item, item.tenant)

    # -- storage commands ----------------------------------------------------
    def _store(self, key: str, value: Any, nbytes: int, flags: int, ttl: float) -> bool:
        """Store, preserving any existing value when allocation fails.

        Real memcached allocates the new item *before* replacing the old
        one, so an OOM-failed store answers SERVER_ERROR and the prior
        value survives; destroying it first (the pre-fix behaviour)
        turned every failed overwrite into a silent delete.  When old
        and new land in the same slab class, freeing the old chunk first
        makes the allocation infallible, so the old value is never at
        risk *and* no spurious eviction is charged to a same-size
        overwrite (the common stat-refresh path).
        """
        size = self._total_size(key, nbytes)
        cls = self.slabs.class_for(size)
        if cls is None:
            raise McError(f"object too large for cache ({nbytes} bytes)")
        old = self._items.get(key)
        if old is not None and old.slab.index == cls.index:
            self._unlink(old, "overwrite")
            return self._link(key, value, nbytes, flags, ttl) is not None
        got = self._allocate(key, nbytes)
        if got is None:
            return False
        # Eviction during allocation targets only the new item's class;
        # the old item lives in a different one, but re-check anyway so
        # a future cross-class eviction policy cannot double-unlink.
        old = self._items.get(key)
        if old is not None:
            self._unlink(old, "overwrite")
        self._insert(got, key, value, nbytes, flags, ttl)
        return True

    def set(self, key: str, value: Any, nbytes: int, flags: int = 0, ttl: float = 0) -> bool:
        """Store unconditionally.  True (STORED) unless allocation fails
        (NOT_STORED — any existing value is left intact)."""
        self._check_key(key)
        if nbytes < 0:
            raise McError("negative value size")
        self.stats.inc("cmd_set")
        return self._store(key, value, nbytes, flags, ttl)

    def add(self, key: str, value: Any, nbytes: int, flags: int = 0, ttl: float = 0) -> bool:
        """Store only if absent (NOT_STORED -> False)."""
        self._check_key(key)
        if self._live_item(key) is not None:
            return False
        return self.set(key, value, nbytes, flags, ttl)

    def replace(self, key: str, value: Any, nbytes: int, flags: int = 0, ttl: float = 0) -> bool:
        """Store only if present."""
        self._check_key(key)
        if self._live_item(key) is None:
            return False
        return self.set(key, value, nbytes, flags, ttl)

    def cas(self, key: str, value: Any, nbytes: int, cas: int, flags: int = 0, ttl: float = 0) -> str:
        """Compare-and-swap: 'STORED', 'EXISTS' (cas mismatch),
        'NOT_FOUND', or 'NOT_STORED' (allocation failure; value intact).

        Stores directly instead of delegating to :meth:`set`, so
        ``cmd_set`` counts only storage commands and cas outcomes get
        their own ``cas_hits``/``cas_badval``/``cas_misses`` counters —
        the same accounting real memcached reports.
        """
        self._check_key(key)
        item = self._live_item(key)
        if item is None:
            self.stats.inc("cas_misses")
            return "NOT_FOUND"
        if item.cas != cas:
            self.stats.inc("cas_badval")
            return "EXISTS"
        if not self._store(key, value, nbytes, flags, ttl):
            return "NOT_STORED"
        self.stats.inc("cas_hits")
        return "STORED"

    def _concat(self, key: str, value: Any, nbytes: int, *, append: bool) -> bool:
        self._check_key(key)
        item = self._live_item(key)
        if item is None:
            return False
        if isinstance(item.value, (bytes, bytearray)) and isinstance(value, (bytes, bytearray)):
            new_value: Any = (
                bytes(item.value) + bytes(value) if append else bytes(value) + bytes(item.value)
            )
        else:
            # Opaque payloads: keep a tuple chain in concat order.
            base = item.value if isinstance(item.value, tuple) else (item.value,)
            extra = (value,)
            new_value = base + extra if append else extra + base
        new_bytes = item.nbytes + nbytes
        flags = item.flags
        ttl = 0.0 if item.exptime == 0 else item.exptime - self.clock()
        # Allocate-before-unlink, like set: a failed concat answers
        # NOT_STORED and must leave the existing value untouched.
        return self._store(key, new_value, new_bytes, flags, ttl)

    def append(self, key: str, value: Any, nbytes: int) -> bool:
        return self._concat(key, value, nbytes, append=True)

    def prepend(self, key: str, value: Any, nbytes: int) -> bool:
        return self._concat(key, value, nbytes, append=False)

    # -- retrieval -------------------------------------------------------------
    def get(self, key: str) -> Optional[Item]:
        """Fetch one item (promotes in LRU); None on miss."""
        self._check_key(key)
        self.stats.inc("cmd_get")
        item = self._live_item(key)
        if item is None:
            self.stats.inc("get_misses")
            if self.tenancy is not None:
                self.tenancy.record_miss(key)
            return None
        self._touch_lru(item)
        self.stats.inc("get_hits")
        if item.tenant is not None:
            self.tenancy.record_hit(item.tenant)
        return item

    def get_multi(self, keys: list[str]) -> dict[str, Item]:
        """Fetch many keys; only hits appear in the result."""
        out: dict[str, Item] = {}
        for key in keys:
            item = self.get(key)
            if item is not None:
                out[key] = item
        return out

    # -- mutation ----------------------------------------------------------------
    def delete(self, key: str) -> bool:
        self._check_key(key)
        self.stats.inc("cmd_delete")
        item = self._live_item(key)
        if item is None:
            return False
        self._unlink(item, "delete")
        return True

    def touch(self, key: str, ttl: float) -> bool:
        """Update an item's TTL without fetching it (``touch_hits``/
        ``touch_misses``, like every other command pair)."""
        self._check_key(key)
        self.stats.inc("cmd_touch")
        item = self._live_item(key)
        if item is None:
            self.stats.inc("touch_misses")
            return False
        old_ttld = item.exptime != 0
        item.exptime = self.clock() + ttl if ttl > 0 else 0.0
        new_ttld = item.exptime != 0
        if old_ttld != new_ttld:
            idx = item.slab.index
            self._ttl_items[idx] = self._ttl_items.get(idx, 0) + (1 if new_ttld else -1)
        self._touch_lru(item)
        self.stats.inc("touch_hits")
        return True

    def _delta(self, key: str, delta: int, op: str) -> Optional[int]:
        """Shared incr/decr: validate, count, mutate, recompute nbytes.

        The stored value becomes the new integer and ``nbytes`` is
        recomputed as its decimal width — real memcached stores the
        ASCII representation, so ``incr`` can grow an item past its
        chunk (9 -> 10 -> ... -> 1000000000), at which point memcached
        reallocates into the next class; we do the same via the normal
        store path (preserving TTL and flags).  In-place width changes
        adjust the ``bytes`` stat but not slab accounting — the chunk
        is unchanged.
        """
        self._check_key(key)
        item = self._live_item(key)
        if item is None:
            self.stats.inc(f"{op}_misses")
            return None
        try:
            current = int(item.value)
        except (TypeError, ValueError):
            raise McError(f"cannot {op}ement non-numeric value") from None
        new = max(0, current + delta)
        new_nbytes = len(str(new))
        self.stats.inc(f"{op}_hits")
        if self._total_size(key, new_nbytes) > item.slab.chunk_size:
            # Numeric width outgrew the chunk: reallocate like a store.
            ttl = 0.0 if item.exptime == 0 else item.exptime - self.clock()
            if not self._store(key, new, new_nbytes, item.flags, ttl):
                return None
            return new
        if new_nbytes != item.nbytes:
            self.stats.inc("bytes", new_nbytes - item.nbytes)
            item.nbytes = new_nbytes
        item.value = new
        self._cas += 1
        item.cas = self._cas
        self._touch_lru(item)
        return new

    def incr(self, key: str, delta: int = 1) -> Optional[int]:
        """Numeric increment; None if missing, McError if non-numeric."""
        return self._delta(key, delta, "incr")

    def decr(self, key: str, delta: int = 1) -> Optional[int]:
        """Numeric decrement (floors at 0, like the protocol)."""
        return self._delta(key, -delta, "decr")

    def flush_all(self) -> None:
        """Drop everything."""
        for key in list(self._items):
            self._unlink(self._items[key], "flush")
        self.stats.inc("cmd_flush")

    def scan(self, cursor: int = 0, limit: int = 64) -> tuple[int, list[tuple[str, Any, int, int, float]]]:
        """Cursor walk over live items in insertion order.

        The enumeration primitive behind elastic migration and
        window-close cleanup.  Returns ``(next_cursor, entries)`` where
        ``next_cursor`` is 0 once the walk is exhausted and each entry
        is ``(key, value, nbytes, flags, ttl)`` with ttl the *remaining*
        lifetime (0 = never).  Expired items are skipped but not
        unlinked — the read path lazily expires them.

        The cursor is anchored to item sequence numbers, not list
        positions: it names the first *seq* not yet visited, so items
        unlinked between pages (migration deletes, window-close
        cleanup, concurrent expiry) can never make the walk skip or
        repeat a survivor — a positional ``keys[cursor:cursor+limit]``
        cursor silently skipped one live key per earlier unlink.
        Items inserted mid-walk get higher seqs and are picked up by
        later pages.  ``cursor=0`` starts; ``next_cursor=0`` means
        exhausted (live seqs start at 1).
        """
        if limit < 1:
            raise ValueError(f"scan limit must be >= 1: {limit}")
        out: list[tuple[str, Any, int, int, float]] = []
        next_cursor = 0
        taken = 0
        # _items insertion order is strictly increasing in seq (any
        # overwrite unlinks and reinserts), so one forward pass finds
        # the resume point and the page after it.
        for item in self._items.values():
            if item.seq < cursor:
                continue
            if taken >= limit:
                next_cursor = item.seq
                break
            taken += 1
            if self._expired(item):
                continue
            ttl = 0.0 if item.exptime == 0 else item.exptime - self.clock()
            out.append((item.key, item.value, item.nbytes, item.flags, ttl))
        return next_cursor, out

    # -- introspection ---------------------------------------------------------------
    @property
    def curr_items(self) -> int:
        return self.stats.get("curr_items")

    def stat_dict(self) -> dict[str, int]:
        d = self.stats.as_dict()
        d.setdefault("get_hits", 0)
        d.setdefault("get_misses", 0)
        d.setdefault("evictions", 0)
        d["bytes_allocated"] = self.slabs.bytes_allocated
        d["limit_maxbytes"] = self.slabs.mem_limit
        return d

    def tenant_stats(self) -> dict[str, dict[str, int]]:
        """Per-tenant accounting (empty when tenancy is off)."""
        if self.tenancy is None:
            return {}
        return self.tenancy.stat_dict()

    def check_invariants(self) -> None:
        """Engine-wide consistency (used by property tests)."""
        per_class_counts: dict[int, int] = {}
        per_class_ttld: dict[int, int] = {}
        for key, item in self._items.items():
            assert item.key == key
            per_class_counts[item.slab.index] = per_class_counts.get(item.slab.index, 0) + 1
            if item.exptime != 0:
                per_class_ttld[item.slab.index] = per_class_ttld.get(item.slab.index, 0) + 1
            assert key in self._lru[item.slab.index]
        for cls in self.slabs.classes:
            n = per_class_counts.get(cls.index, 0)
            assert cls.used_chunks == n, f"class {cls.index}: {cls.used_chunks} != {n}"
            assert cls.used_chunks + cls.free_chunks == cls.pages * cls.chunks_per_page
        for idx, count in self._ttl_items.items():
            assert count == per_class_ttld.get(idx, 0), (
                f"class {idx}: ttl_items {count} != {per_class_ttld.get(idx, 0)}"
            )
        assert self.slabs.bytes_allocated <= self.slabs.mem_limit
        assert self.curr_items == len(self._items)
        if self.tenancy is not None:
            self.tenancy.check_invariants()
            total = sum(a.items for a in self.tenancy.accounts)
            assert total == len(self._items), f"tenant items {total} != {len(self._items)}"
            chunk_bytes = sum(a.bytes_used for a in self.tenancy.accounts)
            assert chunk_bytes == sum(
                it.slab.chunk_size for it in self._items.values()
            )
