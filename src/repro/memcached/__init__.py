"""A memcached reproduction: slab allocator, LRU item store, daemon,
and a libmemcache-style client (§2.2 of the paper).

The engine is a faithful functional model — slab classes with a 1.25
growth factor, per-class LRU eviction, lazy expiration, CAS, the 1 MiB
value / 250-byte key limits — because IMCa's measured behaviour
(capacity misses, self-management, the block-size ceiling) depends on
those mechanics.
"""

from repro.memcached.client import MemcacheClient
from repro.memcached.daemon import McValue, MemcachedDaemon, SERVICE
from repro.memcached.engine import ITEM_OVERHEAD, Item, MAX_KEY_LEN, McError, MemcachedEngine
from repro.memcached.hashing import (
    Crc32Selector,
    KetamaSelector,
    ModuloSelector,
    ReplicatedSelector,
    ServerSelector,
    selector,
)
from repro.memcached.slabs import PAGE_SIZE, SlabAllocator, SlabClass

__all__ = [
    "MemcachedEngine",
    "MemcachedDaemon",
    "MemcacheClient",
    "McValue",
    "McError",
    "Item",
    "SlabAllocator",
    "SlabClass",
    "PAGE_SIZE",
    "MAX_KEY_LEN",
    "ITEM_OVERHEAD",
    "Crc32Selector",
    "ModuloSelector",
    "KetamaSelector",
    "ReplicatedSelector",
    "ServerSelector",
    "selector",
    "SERVICE",
]
