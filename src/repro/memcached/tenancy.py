"""Per-tenant memory arbitration for the memcached engine (Memshare).

PAPERS.md's **Memshare** observation: a slab-partitioned memcached
shared by several applications wastes hit rate under multi-tenant skew,
because the global LRU lets one tenant's churn (a scanner, a flood)
evict another tenant's hot working set.  Recovering that hit rate needs
*memory arbitration*: give each tenant a guaranteed floor, pool the
rest, and steer the pooled bytes to whoever shows the highest marginal
hit-rate gain.

This module is that arbiter, engine-side and deterministic:

* **Tenants** are key namespaces (path prefixes under IMCa's
  ``/abs/path:stat`` / ``/abs/path:<offset>`` schema).  Keys outside
  every namespace fall into a default ``~other`` account, so the
  arbiter always has a total view of memory.
* **Reserved floors** (``TenantSpec.reserved_frac`` of the engine's
  memory) are hard: cross-tenant eviction never pushes a tenant below
  its floor.  A tenant may evict *itself* below its floor — that is its
  own churn, not a neighbour's.
* **Shared pool** = everything above the floors, split evenly at start
  and then re-assigned greedily: every ``rebalance_ops`` recorded gets,
  one ``quantum`` of target bytes moves to the tenant with the most
  shadow-LRU ghost hits in the window, taken from the lower-gain tenant
  with the most *slack* (target above usage — free to give) and only
  then from resident bytes.  Ghost hits (a miss whose key was recently
  evicted) are exactly the accesses more memory would have converted
  into hits, i.e. the marginal-gain estimator Memshare arbitrates on.
* **Eviction preference** enforces the targets: on OOM the victim is
  the most-over-target tenant holding items in the needed slab class,
  then the most-over-floor one, then the requester itself.  Only when
  every candidate sits at/below its floor and the requester has nothing
  to self-evict does the arbiter breach a floor — counted in
  ``floor_breaches`` so experiments can assert it never happened.

With ``arbitrate=False`` the arbiter only *accounts* (per-tenant
hits/misses/evictions/bytes and ghost hits): victim selection and
target reassignment are disabled, so the engine behaves byte-for-byte
like the vanilla global slab LRU while still exposing per-tenant
visibility — the harness's "vanilla" comparison arm.

Everything is driven by the engine's deterministic op stream; there is
no randomness and no wall clock, so identical op sequences produce
identical arbitration decisions (the ``--jobs`` byte-equality story).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.util.stats import Counter
from repro.util.units import MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.memcached.engine import Item

#: Name of the catch-all account for keys outside every namespace.
OTHER_TENANT = "~other"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's cache-side contract.

    ``namespace`` is a key prefix (IMCa keys start with the absolute
    path, so ``/t/alpha/`` captures every stat and data block under
    that subtree).  ``reserved_frac`` is the guaranteed memory floor as
    a fraction of the engine's ``mem_limit``.
    """

    name: str
    namespace: str
    reserved_frac: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or self.name == OTHER_TENANT:
            raise ValueError(f"bad tenant name {self.name!r}")
        if not self.namespace:
            raise ValueError(f"tenant {self.name!r} needs a key namespace")
        if not 0.0 <= self.reserved_frac < 1.0:
            raise ValueError(
                f"tenant {self.name!r}: reserved_frac must be in [0, 1): "
                f"{self.reserved_frac}"
            )


def validate_specs(specs: tuple[TenantSpec, ...]) -> None:
    """Reject spec sets no arbiter could serve (shared by IMCaConfig)."""
    if not specs:
        raise ValueError("need at least one TenantSpec")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names: {names}")
    spaces = [s.namespace for s in specs]
    if len(set(spaces)) != len(spaces):
        raise ValueError(f"duplicate tenant namespaces: {spaces}")
    reserved_total = sum(s.reserved_frac for s in specs)
    if reserved_total >= 1.0:
        raise ValueError(
            f"reserved floors sum to {reserved_total:.2f}; must leave a "
            "shared pool (< 1.0)"
        )


class TenantAccount:
    """One tenant's live accounting: usage, LRUs, shadow LRU, counters."""

    __slots__ = (
        "spec", "index", "floor", "target", "bytes_used", "items",
        "lru", "ghost", "window_ghost_hits", "counters",
    )

    def __init__(self, spec: TenantSpec, index: int, floor: int, target: int) -> None:
        self.spec = spec
        self.index = index
        #: Guaranteed bytes (never breached by cross-tenant eviction).
        self.floor = floor
        #: Current arbitration target (floor + shared-pool share).
        self.target = target
        #: Chunk bytes currently held (slab truth, not payload bytes).
        self.bytes_used = 0
        self.items = 0
        #: Per-slab-class LRU of this tenant's items (MRU at the end).
        self.lru: dict[int, OrderedDict[str, "Item"]] = {}
        #: Shadow LRU of recently evicted keys -> payload nbytes.
        self.ghost: OrderedDict[str, int] = OrderedDict()
        #: Ghost hits since the last rebalance (the gain signal).
        self.window_ghost_hits = 0
        self.counters = Counter()

    @property
    def name(self) -> str:
        return self.spec.name

    def stat_dict(self) -> dict[str, int]:
        d = self.counters.as_dict()
        for k in ("hits", "misses", "evictions", "reclaimed", "ghost_hits"):
            d.setdefault(k, 0)
        d["bytes"] = self.bytes_used
        d["items"] = self.items
        d["target_bytes"] = self.target
        d["reserved_bytes"] = self.floor
        return d


class TenantArbiter:
    """Key->tenant attribution + floor/shared-pool memory arbitration.

    One arbiter serves one :class:`MemcachedEngine` (arbitration is a
    per-daemon decision, exactly like the slab allocator it steers).
    """

    def __init__(
        self,
        specs: tuple[TenantSpec, ...],
        mem_limit: int,
        *,
        arbitrate: bool = True,
        quantum: int = 1 * MiB,
        rebalance_ops: int = 256,
        ghost_entries: int = 4096,
    ) -> None:
        validate_specs(specs)
        if quantum < 1 or rebalance_ops < 1 or ghost_entries < 1:
            raise ValueError("quantum, rebalance_ops, ghost_entries must be >= 1")
        self.arbitrate = arbitrate
        self.quantum = quantum
        self.rebalance_ops = rebalance_ops
        self.ghost_entries = ghost_entries
        self.mem_limit = mem_limit
        self.stats = Counter()
        floors = [int(s.reserved_frac * mem_limit) for s in specs]
        shared = mem_limit - sum(floors)
        accounts = [
            TenantAccount(spec, i, floors[i], floors[i])
            for i, spec in enumerate(specs)
        ]
        # The catch-all account participates in the shared pool so that
        # non-tenant keys are arbitrated too, never invisible.  Its spec
        # uses the reserved name and an unmatched namespace, built
        # without validation (which forbids both on user-supplied specs).
        other_spec = TenantSpec.__new__(TenantSpec)
        object.__setattr__(other_spec, "name", OTHER_TENANT)
        object.__setattr__(other_spec, "namespace", "")
        object.__setattr__(other_spec, "reserved_frac", 0.0)
        other = TenantAccount(other_spec, len(accounts), 0, 0)
        accounts.append(other)
        share, rem = divmod(shared, len(accounts))
        for a in accounts:
            a.target += share
        accounts[0].target += rem  # deterministic: remainder to tenant 0
        self.accounts: list[TenantAccount] = accounts
        self.other = other
        #: (namespace, account) in spec order for prefix matching.
        self._prefixes = [(a.spec.namespace, a) for a in accounts[:-1]]
        self._ops_since = 0

    # -- attribution ---------------------------------------------------------
    def tenant_of(self, key: str) -> TenantAccount:
        for prefix, account in self._prefixes:
            if key.startswith(prefix):
                return account
        return self.other

    # -- engine hooks --------------------------------------------------------
    def on_insert(self, item: "Item") -> TenantAccount:
        acct = self.tenant_of(item.key)
        acct.bytes_used += item.slab.chunk_size
        acct.items += 1
        acct.lru.setdefault(item.slab.index, OrderedDict())[item.key] = item
        acct.ghost.pop(item.key, None)
        return acct

    def on_unlink(self, item: "Item", acct: TenantAccount, cause: str) -> None:
        acct.bytes_used -= item.slab.chunk_size
        acct.items -= 1
        del acct.lru[item.slab.index][item.key]
        if cause == "evict":
            acct.counters.inc("evictions")
            # Shadow LRU: an evicted key re-requested soon is a hit more
            # memory would have kept.  Expired/deleted keys don't count
            # — no amount of memory makes those hits.
            acct.ghost[item.key] = item.nbytes
            if len(acct.ghost) > self.ghost_entries:
                acct.ghost.popitem(last=False)
        elif cause == "reclaim":
            acct.counters.inc("reclaimed")

    def on_touch(self, item: "Item", acct: TenantAccount) -> None:
        acct.lru[item.slab.index].move_to_end(item.key)

    def record_hit(self, acct: TenantAccount) -> None:
        acct.counters.inc("hits")
        self._tick()

    def record_miss(self, key: str) -> TenantAccount:
        acct = self.tenant_of(key)
        acct.counters.inc("misses")
        if key in acct.ghost:
            del acct.ghost[key]
            acct.counters.inc("ghost_hits")
            acct.window_ghost_hits += 1
        self._tick()
        return acct

    # -- eviction preference -------------------------------------------------
    def pick_victim(self, cls_index: int, requester: TenantAccount) -> Optional["Item"]:
        """The item to evict for an OOM in slab class *cls_index*, or
        ``None`` to fall back to the engine's global LRU choice.

        Preference order: most-over-target, then most-over-floor, then
        the requester's own LRU, then (counted ``floor_breaches``) the
        least-bad floor violation.  Within the chosen tenant the victim
        is its LRU item of the class.
        """
        if not self.arbitrate:
            return None
        cands = [a for a in self.accounts if a.lru.get(cls_index)]
        if not cands:
            return None
        # Every victim in this class frees the same chunk size; a tenant
        # is floor-safe only if losing one such chunk keeps it at or
        # above its floor — the floor holds byte-for-byte, not just
        # "was above it before the eviction".
        chunk = next(iter(cands[0].lru[cls_index].values())).slab.chunk_size
        safe = [a for a in cands if a.bytes_used - chunk >= a.floor]
        over_target = [a for a in safe if a.bytes_used > a.target]
        if over_target:
            acct = max(over_target, key=lambda a: (a.bytes_used - a.target, -a.index))
        elif safe:
            acct = max(safe, key=lambda a: (a.bytes_used - a.floor, -a.index))
        elif requester in cands:
            # Self-eviction below one's own floor is the tenant's own
            # churn, not a neighbour's — allowed and unbreached.
            acct = requester
        else:
            acct = max(cands, key=lambda a: (a.bytes_used - a.floor, -a.index))
            self.stats.inc("floor_breaches")
        lru = acct.lru[cls_index]
        return next(iter(lru.values()))

    # -- greedy shared-pool reassignment -------------------------------------
    def _tick(self) -> None:
        self._ops_since += 1
        if self._ops_since >= self.rebalance_ops:
            self._rebalance()

    def _rebalance(self) -> None:
        self._ops_since = 0
        if not self.arbitrate or len(self.accounts) < 2:
            for a in self.accounts:
                a.window_ghost_hits = 0
            return
        winner = max(self.accounts, key=lambda a: (a.window_ghost_hits, -a.index))
        if winner.window_ghost_hits > 0:
            donors = [
                a for a in self.accounts
                if a is not winner
                and a.target - self.quantum >= a.floor
                and a.window_ghost_hits < winner.window_ghost_hits
            ]
            if donors:
                # Cheapest donor = target farthest from usage in either
                # direction: unused target (slack) is free to give, and an
                # already-over-target tenant is the preferred eviction
                # victim regardless, so lowering its target costs nothing
                # extra.  A protected tenant sitting at its target — the
                # donor that would actually lose resident bytes — goes
                # last (fewest ghost hits first, i.e. lowest marginal
                # loss).
                donor = max(
                    donors,
                    key=lambda a: (
                        abs(a.target - a.bytes_used),
                        -a.window_ghost_hits,
                        a.index,
                    ),
                )
                donor.target -= self.quantum
                winner.target += self.quantum
                self.stats.inc("rebalances")
                self.stats.inc("bytes_reassigned", self.quantum)
        for a in self.accounts:
            a.window_ghost_hits = 0

    # -- introspection -------------------------------------------------------
    def stat_dict(self) -> dict[str, dict[str, int]]:
        """``{tenant name: stats}`` plus an ``~arbiter`` meta entry."""
        out = {a.name: a.stat_dict() for a in self.accounts}
        meta = self.stats.as_dict()
        meta.setdefault("rebalances", 0)
        meta.setdefault("bytes_reassigned", 0)
        meta.setdefault("floor_breaches", 0)
        out["~arbiter"] = meta
        return out

    def check_invariants(self) -> None:
        """Per-tenant accounting consistency (used by engine tests)."""
        total_target = sum(a.target for a in self.accounts)
        assert total_target == self.mem_limit, (
            f"targets drifted: {total_target} != {self.mem_limit}"
        )
        for a in self.accounts:
            n = sum(len(lru) for lru in a.lru.values())
            assert a.items == n, f"{a.name}: items {a.items} != lru {n}"
            assert a.bytes_used >= 0
            assert a.target >= a.floor, f"{a.name}: target below floor"
