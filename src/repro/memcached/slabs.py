"""Slab-based memory allocator, as in memcached.

"Memory management is based on slab cache allocation to reduce
excessive fragmentation" (paper §2.2).  Memory is carved into 1 MiB
*pages*, each assigned to a *slab class* of fixed chunk size; chunk
sizes grow geometrically.  An item occupies one chunk of the smallest
class that fits it, so the 1 MiB page size also caps the largest
storable item — the origin of memcached's 1 MB value limit that bounds
IMCa's block size (§4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.stats import Counter
from repro.util.units import MiB


#: Size of one slab page (and therefore the largest chunk).
PAGE_SIZE = 1 * MiB


@dataclass
class SlabClass:
    """One chunk-size class."""

    index: int
    chunk_size: int
    pages: int = 0
    free_chunks: int = 0
    used_chunks: int = 0

    @property
    def chunks_per_page(self) -> int:
        return PAGE_SIZE // self.chunk_size


class SlabAllocator:
    """Page/chunk accounting for the item store.

    Tracks only sizes, not addresses — the engine stores Python values;
    what matters for fidelity is *when memory runs out and eviction
    begins*, which depends on chunk rounding and page assignment
    exactly as modelled here.
    """

    def __init__(
        self,
        mem_limit: int,
        growth_factor: float = 1.25,
        min_chunk: int = 96,
    ) -> None:
        if mem_limit < PAGE_SIZE:
            raise ValueError("mem_limit must hold at least one page")
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must be > 1")
        self.mem_limit = mem_limit
        self.max_pages = mem_limit // PAGE_SIZE
        self.classes: list[SlabClass] = []
        size = min_chunk
        idx = 0
        while size < PAGE_SIZE:
            self.classes.append(SlabClass(index=idx, chunk_size=size))
            size = int(size * growth_factor)
            # memcached aligns chunk sizes to 8 bytes.
            size = (size + 7) & ~7
            idx += 1
        self.classes.append(SlabClass(index=idx, chunk_size=PAGE_SIZE))
        self.total_pages = 0
        self.stats = Counter()

    def class_for(self, size: int) -> SlabClass | None:
        """Smallest class whose chunk fits *size* (None if > page)."""
        if size > PAGE_SIZE:
            return None
        lo, hi = 0, len(self.classes) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.classes[mid].chunk_size < size:
                lo = mid + 1
            else:
                hi = mid
        return self.classes[lo]

    def alloc(self, size: int) -> SlabClass | None:
        """Take one chunk for an item of *size* bytes.

        Returns the class used, or ``None`` when memory is exhausted and
        the caller must evict from that class (memcached's behaviour:
        eviction is per-class, no page reassignment).
        """
        cls = self.class_for(size)
        if cls is None:
            return None
        if cls.free_chunks == 0:
            if self.total_pages < self.max_pages:
                self.total_pages += 1
                cls.pages += 1
                cls.free_chunks += cls.chunks_per_page
                self.stats.inc("pages_allocated")
            else:
                self.stats.inc("alloc_failures")
                return None
        cls.free_chunks -= 1
        cls.used_chunks += 1
        return cls

    def free(self, cls: SlabClass) -> None:
        """Return one chunk of *cls* to its free list."""
        if cls.used_chunks <= 0:
            raise RuntimeError(f"double free in slab class {cls.index}")
        cls.used_chunks -= 1
        cls.free_chunks += 1

    @property
    def bytes_allocated(self) -> int:
        return self.total_pages * PAGE_SIZE

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<SlabAllocator {self.total_pages}/{self.max_pages} pages, "
            f"{len(self.classes)} classes>"
        )
