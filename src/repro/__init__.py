"""repro — a full reproduction of *IMCa: A High Performance Caching
Front-end for GlusterFS on InfiniBand* (Noronha & Panda, 2008).

The package contains a deterministic discrete-event simulation of the
paper's entire testbed — InfiniBand-class network fabric, disks and
RAID, OS page cache, a memcached engine, a GlusterFS-like translator
file system, Lustre-like and NFS-like baselines — with the IMCa caching
tier (CMCache / MCD array / SMCache) as the core contribution, plus the
paper's benchmarks and a harness that regenerates every figure.

Quickstart::

    from repro import build_gluster_testbed, TestbedConfig
    tb = build_gluster_testbed(TestbedConfig(num_clients=4, num_mcds=2))

See ``examples/quickstart.py`` for a complete runnable tour.
"""

__version__ = "1.0.0"

# Public API re-exports are lazy (PEP 562) so that low-level subpackages
# (repro.sim, repro.util, ...) can be imported without pulling in the whole
# stack.
_LAZY = {
    "TestbedConfig": "repro.cluster",
    "GlusterTestbed": "repro.cluster",
    "LustreTestbed": "repro.cluster",
    "NFSTestbed": "repro.cluster",
    "build_gluster_testbed": "repro.cluster",
    "build_lustre_testbed": "repro.cluster",
    "build_nfs_testbed": "repro.cluster",
    "Observability": "repro.obs",
    "MetricsRegistry": "repro.obs",
}

__all__ = ["__version__", *_LAZY]


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)


def __dir__():
    return sorted(__all__)
