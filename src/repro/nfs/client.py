"""The NFS client: rsize/wsize-chunked RPCs with an attribute cache.

Data is not cached (the Fig 1 experiment measures server-limited read
bandwidth), but attributes are, with the classic NFS timeout scheme:
"NFS does not offer strict cache coherency and uses coarse timeouts to
deal with the issue" (§1).  ``getattr`` results are reused for
``ac_timeout`` seconds, so repeated stats are free — and stale when
another client writes within the window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.localfs.types import ReadResult, StatBuf, slice_result
from repro.nfs.server import NfsServer, SERVICE
from repro.net.fabric import Node
from repro.net.rpc import Endpoint
from repro.util.stats import Counter
from repro.util.units import KiB, USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

#: In-kernel client entry cost per op.
CLIENT_OP_CPU = 6 * USEC
#: NFSv3-era transfer sizes.
DEFAULT_RSIZE = 32 * KiB
DEFAULT_WSIZE = 32 * KiB
#: Attribute cache timeout (Linux acregmin default: 3s).
DEFAULT_AC_TIMEOUT = 3.0


class NfsClient:
    """One NFS mount."""

    def __init__(
        self,
        sim: "Simulator",
        node: Node,
        endpoint: Endpoint,
        server: NfsServer,
        rsize: int = DEFAULT_RSIZE,
        wsize: int = DEFAULT_WSIZE,
        ac_timeout: float = DEFAULT_AC_TIMEOUT,
    ) -> None:
        self.sim = sim
        self.node = node
        self.endpoint = endpoint
        self.server = server
        self.rsize = rsize
        self.wsize = wsize
        self.ac_timeout = ac_timeout
        #: path -> (StatBuf, cached-at time).
        self._attr_cache: dict[str, tuple[StatBuf, float]] = {}
        self._fds: dict[int, str] = {}
        self._next_fd = 3
        self.stats = Counter()

    def _call(self, op: str, args: tuple, req_size: int) -> Generator:
        reply = yield from self.endpoint.call(self.server.node, SERVICE, (op, args), req_size)
        return reply

    def _vfs(self) -> Generator:
        yield self.node.cpu.run(CLIENT_OP_CPU)

    def _new_fd(self, path: str) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = path
        return fd

    def path_of(self, fd: int) -> str:
        return self._fds[fd]

    def create(self, path: str) -> Generator:
        yield from self._vfs()
        yield from self._call("create", (path,), 96 + len(path))
        return self._new_fd(path)

    def open(self, path: str) -> Generator:
        yield from self._vfs()
        yield from self._call("lookup", (path,), 96 + len(path))
        return self._new_fd(path)

    def _cache_attrs(self, path: str, stat: StatBuf) -> None:
        if self.ac_timeout > 0:
            self._attr_cache[path] = (stat.copy(), self.sim.now)

    def stat(self, path: str) -> Generator:
        yield from self._vfs()
        cached = self._attr_cache.get(path)
        if cached is not None and self.sim.now - cached[1] < self.ac_timeout:
            self.stats.inc("attr_hits")
            return cached[0].copy()
        self.stats.inc("attr_misses")
        result: StatBuf = yield from self._call("getattr", (path,), 96 + len(path))
        self._cache_attrs(path, result)
        return result

    def read(self, fd: int, offset: int, size: int) -> Generator:
        """Chunked ranged read; returns an assembled ReadResult."""
        path = self.path_of(fd)
        yield from self._vfs()
        self.stats.inc("reads")
        parts: list[ReadResult] = []
        pos, end = offset, offset + size
        while pos < end:
            take = min(self.rsize, end - pos)
            r: ReadResult = yield from self._call("read", (path, pos, take), 96 + len(path))
            parts.append(r)
            pos += r.size
            if r.size < take:
                break  # EOF
        intervals = [iv for p in parts for iv in p.intervals]
        data = None
        if parts and all(p.data is not None for p in parts):
            data = b"".join(p.data for p in parts)  # type: ignore[misc]
        actual = sum(p.size for p in parts)
        return ReadResult(offset=offset, size=actual, intervals=intervals, data=data)

    def write(self, fd: int, offset: int, size: int, data=None) -> Generator:
        """Chunked write-through; returns the last chunk's version."""
        path = self.path_of(fd)
        yield from self._vfs()
        self.stats.inc("writes")
        version = 0
        pos, end = offset, offset + size
        while pos < end:
            take = min(self.wsize, end - pos)
            payload = None
            if data is not None:
                lo = pos - offset
                payload = data[lo : lo + take]
            version = yield from self._call(
                "write", (path, pos, take, payload), 96 + len(path) + take
            )
            pos += take
        # Our own write invalidates our cached attributes (mtime moved).
        self._attr_cache.pop(path, None)
        return version

    def unlink(self, path: str) -> Generator:
        yield from self._vfs()
        self._attr_cache.pop(path, None)
        yield from self._call("remove", (path,), 96 + len(path))

    def close(self, fd: int) -> Generator:
        yield from self._vfs()
        self._fds.pop(fd, None)
