"""An NFSv3-like single-server baseline (the Fig 1 motivation system).

Models NFS/RDMA, NFS/TCP-over-IPoIB and NFS/TCP-over-GigE mounts by
running the same protocol over different transport profiles.  The
server's page cache capacity is the experiment's key variable: "The
bandwidth available to the clients seems to be related to the amount of
memory on the server and falls off as the server runs out of memory and
is forced to fetch data from the disk" (§3).
"""

from repro.nfs.client import NfsClient
from repro.nfs.server import NfsServer

__all__ = ["NfsClient", "NfsServer"]
