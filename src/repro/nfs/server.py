"""The NFS server: nfsd thread pool over a local FS."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.localfs.fs import LocalFS
from repro.localfs.types import ReadResult, StatBuf
from repro.net.fabric import Network, Node
from repro.net.rpc import Endpoint, RpcCall
from repro.sim.station import FifoStation
from repro.util.stats import Counter
from repro.util.units import USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

SERVICE = "nfs"

#: Per-request service cost (XDR decode + VFS + export checks).
NFSD_OP_CPU = 15 * USEC
#: Kernel nfsd thread count (the classic default is 8).
NFSD_THREADS = 8
#: Fixed reply overhead beyond payload.
REPLY_OVERHEAD = 96


class NfsServer:
    """Single-node NFS exporter."""

    def __init__(self, sim: "Simulator", net: Network, node: Node, fs: LocalFS):
        self.sim = sim
        self.node = node
        self.fs = fs
        self.endpoint = Endpoint(net, node)
        self.threads = FifoStation(sim, NFSD_THREADS, f"{node.name}.nfsd")
        self.stats = Counter()
        self.endpoint.register(SERVICE, self._handle)

    def _handle(self, call: RpcCall) -> Generator:
        op, args = call.args
        self.stats.inc(f"op_{op}")
        yield self.threads.run(NFSD_OP_CPU)
        if op == "read":
            path, offset, size = args
            result = yield from self.fs.read(path, offset, size)
            return result, REPLY_OVERHEAD + result.size
        if op == "write":
            path, offset, size, data = args
            version = yield from self.fs.write(path, offset, size, data)
            return version, REPLY_OVERHEAD
        if op == "getattr":
            (path,) = args
            stat = yield from self.fs.stat(path)
            return stat, StatBuf.WIRE_SIZE
        if op == "create":
            (path,) = args
            stat = yield from self.fs.create(path)
            return stat, StatBuf.WIRE_SIZE
        if op == "lookup":
            (path,) = args
            stat = yield from self.fs.lookup(path)
            return stat, StatBuf.WIRE_SIZE
        if op == "remove":
            (path,) = args
            yield from self.fs.unlink(path)
            return None, REPLY_OVERHEAD
        raise ValueError(f"unknown NFS op {op!r}")
