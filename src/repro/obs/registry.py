"""A unified metrics registry: named instruments per component.

Every simulated component (a CMCache translator, an SMCache translator,
an MCD engine, the fabric) records into a :class:`ComponentMetrics`
owned by the testbed's :class:`MetricsRegistry` instead of a private
``Counter()`` bag.  The registry supports hierarchical dotted names
(``cmcache.client0``), prefix aggregation (merge every ``cmcache.*``
component into one view) and JSON-safe snapshots for the exporters.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.util.stats import Counter, Histogram, OnlineStats


class ComponentMetrics:
    """One component's instruments: counters, timers, histograms, series."""

    __slots__ = ("name", "counters", "timers", "histograms", "series")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.counters = Counter()
        #: name -> streaming mean/min/max (latency observations).
        self.timers: dict[str, OnlineStats] = {}
        #: name -> log-bucketed distribution (percentile queries).
        self.histograms: dict[str, Histogram] = {}
        #: name -> [(sim time, value)] time series (fed by samplers).
        self.series: dict[str, list[tuple[float, float]]] = {}

    # -- recording ---------------------------------------------------------
    def inc(self, name: str, by: int = 1) -> None:
        self.counters.inc(name, by)

    def observe(self, name: str, value: float) -> None:
        self.timer(name).add(value)

    def record(self, name: str, value: float) -> None:
        self.histogram(name).add(value)

    def sample(self, name: str, t: float, value: float) -> None:
        self.series.setdefault(name, []).append((t, value))

    # -- instrument access -------------------------------------------------
    def timer(self, name: str) -> OnlineStats:
        stats = self.timers.get(name)
        if stats is None:
            stats = self.timers[name] = OnlineStats()
        return stats

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    # -- folding -----------------------------------------------------------
    def merge(self, other: "ComponentMetrics") -> None:
        """Fold *other*'s instruments into this component."""
        self.counters.merge(other.counters)
        for name, stats in other.timers.items():
            self.timer(name).merge(stats)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram.like(hist)
            mine.merge(hist)
        for name, points in other.series.items():
            self.series.setdefault(name, []).extend(points)

    def snapshot(self) -> dict:
        """JSON-safe digest of every instrument."""
        out: dict = {"counters": self.counters.as_dict()}
        if self.timers:
            out["timers"] = {
                name: {"n": s.n, "mean": s.mean, "min": s.min, "max": s.max, "total": s.total}
                for name, s in sorted(self.timers.items())
                if s.n
            }
        if self.histograms:
            out["histograms"] = {
                name: {"n": h.n, **h.summary()} for name, h in sorted(self.histograms.items())
            }
        if self.series:
            out["series"] = {
                name: [[t, v] for t, v in points]
                for name, points in sorted(self.series.items())
            }
        return out


class MetricsRegistry:
    """The testbed-wide registry of :class:`ComponentMetrics`."""

    def __init__(self, name: str = "testbed") -> None:
        self.name = name
        self.components: dict[str, ComponentMetrics] = {}

    def component(self, name: str) -> ComponentMetrics:
        """Get-or-create the component registered under *name*."""
        comp = self.components.get(name)
        if comp is None:
            comp = self.components[name] = ComponentMetrics(name)
        return comp

    def matching(self, prefix: str) -> Iterable[ComponentMetrics]:
        """Components named *prefix* exactly or under ``prefix.``."""
        dotted = prefix + "."
        for name in sorted(self.components):
            if name == prefix or name.startswith(dotted):
                yield self.components[name]

    def aggregate(self, prefix: str = "") -> ComponentMetrics:
        """Merge matching components into one fresh view.

        An empty *prefix* aggregates the whole registry.  This replaces
        the hand-rolled dict-summing loops previously scattered through
        ``cluster.py``.
        """
        total = ComponentMetrics(prefix or self.name)
        comps = self.matching(prefix) if prefix else (
            self.components[k] for k in sorted(self.components)
        )
        for comp in comps:
            total.merge(comp)
        return total

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in, component by component."""
        for name in sorted(other.components):
            self.component(name).merge(other.components[name])

    def snapshot(self) -> dict[str, dict]:
        """``{component name: snapshot}`` for every component."""
        return {name: self.components[name].snapshot() for name in sorted(self.components)}

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Aggregated plain counter dict (compat with old ``*_stats``)."""
        return self.aggregate(prefix).counters.as_dict()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MetricsRegistry {self.name!r} components={len(self.components)}>"


def merged_counters(counters: Iterable[Optional[Counter]]) -> dict[str, int]:
    """Merge Counter bags (skipping ``None``) into one plain dict."""
    total = Counter()
    for c in counters:
        if c is not None:
            total.merge(c)
    return total.as_dict()
