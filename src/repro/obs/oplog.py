"""Per-operation lifecycle records (observability layer 2).

PR 1's tracer answers "where does *aggregate* time go" (per-tier
histograms); this module answers "why was *this* op slow".  Every root
client span becomes one :class:`OpRecord` carrying the op's identity
(type, client node, path, bytes), its sim-time start/end, the exclusive
sim time each tier contributed on the op's critical path, outcome tags
(hot-cache hit / MCD hit / partial fill / readahead credit / miss),
event counts (retries, timeouts, replica failovers, server round
trips), and the degraded-MCD set active when the op started.

Records are populated *from the existing span stack*: the tracer opens
a record when a root ``client``-tier span opens, folds each closing
span's exclusive time into it, and finalises it when the root closes.
Components sprinkle annotations through ``tracer.op_tag`` /
``op_count`` / ``op_set``; annotations from helper processes a root op
spawned (multi-get batches, partial-fill reads, fan-outs) attribute to
the owning op by walking the process spawner chain.

Two guarantees mirror the tracer's:

* **Determinism** — records only read ``sim.now`` and never schedule
  sim events, so logged and unlogged runs report identical latencies
  and same-seed oplogs are byte-identical (including across
  ``--jobs N``: instrumented passes always run in-process).
* **Near-zero disabled cost** — with no oplog attached the tracer's
  ``oplog`` attribute is ``None``; hot paths branch on that single
  attribute exactly like ``tracer.enabled``.

The log itself is a ring buffer (:data:`DEFAULT_OPLOG_LIMIT` records):
when full, the *oldest* records drop and ``dropped`` counts them, so
long runs keep the most recent window without unbounded memory.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterable, Optional

#: Default cap on retained op records (ring semantics: oldest drop first).
DEFAULT_OPLOG_LIMIT = 100_000


class OpRecord:
    """One client-visible operation's lifecycle."""

    __slots__ = (
        "op", "client", "path", "nbytes", "start", "end",
        "tiers", "tags", "counts", "degraded",
    )

    def __init__(self, op: str, start: float, degraded: tuple) -> None:
        self.op = op
        self.client = ""
        self.path = ""
        self.nbytes = 0
        self.start = start
        self.end = start
        #: tier -> exclusive sim seconds spent inside this op.
        self.tiers: dict[str, float] = {}
        #: Outcome tags in first-seen order (e.g. ``read-partial-fill``).
        self.tags: list[str] = []
        #: Event counts (retries, timeouts, failovers, fill ranges, ...).
        self.counts: dict[str, int] = {}
        #: MCD indices crashed when the op started (injector ground truth).
        self.degraded = degraded

    @property
    def duration(self) -> float:
        return self.end - self.start

    def add_tier(self, tier: str, seconds: float) -> None:
        self.tiers[tier] = self.tiers.get(tier, 0.0) + seconds

    def tag(self, tag: str) -> None:
        if tag not in self.tags:
            self.tags.append(tag)

    def count(self, name: str, by: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + by

    def to_dict(self) -> dict:
        """JSON-safe digest (stable shape; exporters sort the keys)."""
        return {
            "op": self.op,
            "client": self.client,
            "path": self.path,
            "bytes": self.nbytes,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "tiers": {t: self.tiers[t] for t in sorted(self.tiers)},
            "tags": list(self.tags),
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "degraded_mcds": list(self.degraded),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpRecord({self.op!r}, dur={self.duration:.3g}s, "
            f"tags={self.tags})"
        )


class OpLog:
    """Ring-buffer-capped log of finished :class:`OpRecord`\\ s.

    The tracer drives ``begin``/``finish``; SLO monitors appended to
    ``monitors`` observe every finished record in close order (the
    deterministic sim order).  ``degraded_mcds`` is maintained by the
    fault injector so records capture the fault state at op start.
    """

    def __init__(self, limit: int = DEFAULT_OPLOG_LIMIT) -> None:
        if limit < 1:
            raise ValueError(f"oplog limit must be >= 1: {limit}")
        self.limit = limit
        self.records: deque[OpRecord] = deque(maxlen=limit)
        #: Finished records ever, including those the ring dropped.
        self.total = 0
        #: Annotations that found no open op to attach to.
        self.orphan_annotations = 0
        #: Live set of crashed MCD indices (fault-injector ground truth).
        self.degraded_mcds: set[int] = set()
        #: SLO monitors fed each finished record (see repro.obs.slo).
        self.monitors: list = []

    @property
    def dropped(self) -> int:
        """Records pushed out of the ring by newer ones."""
        return self.total - len(self.records)

    # -- record lifecycle (driven by SimTracer) ---------------------------
    def begin(self, op: str, start: float) -> OpRecord:
        return OpRecord(op, start, tuple(sorted(self.degraded_mcds)))

    def finish(self, rec: OpRecord, end: float) -> None:
        rec.end = end
        self.total += 1
        self.records.append(rec)
        for monitor in self.monitors:
            monitor.observe(rec)

    # -- export -----------------------------------------------------------
    def jsonl_lines(self) -> Iterable[str]:
        """One compact JSON object per retained record, in close order."""
        for rec in self.records:
            yield json.dumps(rec.to_dict(), sort_keys=True, separators=(",", ":"))

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<OpLog {len(self.records)}/{self.limit} (total={self.total})>"
