"""Sim-time SLO monitors with multi-window burn-rate alerting.

An SLO is a target fraction of *good* operations — e.g. "99% of stats
complete within 200µs" (a latency objective) or "99.9% of reads
succeed" (an availability objective).  The *error budget* is the
allowed bad fraction (``1 - objective``), and the **burn rate** over a
window is how fast that budget is being consumed::

    burn = bad_fraction_in_window / (1 - objective)

A burn rate of 1.0 spends the budget exactly at the sustainable pace;
a fault window that fails half the ops against a 99% objective burns
at 50x.  Following the multi-window practice (fast window to catch the
onset quickly, slow window to suppress blips), an alert fires only
while *both* windows exceed the threshold, and clears when either
drops back under it.

Determinism: monitors are fed synchronously from
:meth:`~repro.obs.oplog.OpLog.finish` — evaluation happens only at op
completion, never on sim timers, so monitoring schedules no events and
same-seed runs produce byte-identical breach histories.  Windows are
sim-time sliding windows over completed ops (keyed by op end time).
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.oplog import OpRecord


class SloSpec:
    """One objective: which ops it covers and what *good* means.

    ``kind`` is ``"latency"`` (good = ``duration <= threshold``) or
    ``"availability"`` (good = no tag in ``bad_tags``).  ``op_prefix``
    selects the ops the objective covers by root-span name prefix
    (e.g. ``"client.stat"``, or ``"client."`` for everything).
    """

    __slots__ = (
        "name", "kind", "op_prefix", "objective", "threshold",
        "bad_tags", "fast_window", "slow_window", "burn_threshold",
        "min_ops",
    )

    def __init__(
        self,
        name: str,
        *,
        op_prefix: str,
        objective: float,
        kind: str = "latency",
        threshold: float = 0.0,
        bad_tags: tuple = ("op-error",),
        fast_window: float,
        slow_window: float,
        burn_threshold: float = 2.0,
        min_ops: int = 10,
    ) -> None:
        if kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind: {kind!r}")
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1): {objective}")
        if kind == "latency" and threshold <= 0.0:
            raise ValueError("latency SLO needs a positive threshold")
        if not 0.0 < fast_window <= slow_window:
            raise ValueError(
                f"need 0 < fast_window <= slow_window: "
                f"{fast_window} vs {slow_window}"
            )
        self.name = name
        self.kind = kind
        self.op_prefix = op_prefix
        self.objective = objective
        self.threshold = threshold
        self.bad_tags = tuple(bad_tags)
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.burn_threshold = burn_threshold
        #: Minimum completed ops in the fast window before alerting
        #: (suppresses noise at window edges / run start).
        self.min_ops = min_ops

    def covers(self, rec: "OpRecord") -> bool:
        return rec.op.startswith(self.op_prefix)

    def is_good(self, rec: "OpRecord") -> bool:
        if self.kind == "latency":
            return rec.duration <= self.threshold
        return not any(t in rec.tags for t in self.bad_tags)

    @property
    def budget(self) -> float:
        """The error budget: the allowed bad fraction."""
        return 1.0 - self.objective


class _Window:
    """Sliding sim-time window of (end_time, good) observations."""

    __slots__ = ("span", "events", "bad")

    def __init__(self, span: float) -> None:
        self.span = span
        self.events: deque[tuple[float, bool]] = deque()
        self.bad = 0

    def add(self, now: float, good: bool) -> None:
        self.events.append((now, good))
        if not good:
            self.bad += 1
        cutoff = now - self.span
        events = self.events
        while events and events[0][0] <= cutoff:
            _, was_good = events.popleft()
            if not was_good:
                self.bad -= 1

    def burn(self, budget: float) -> float:
        n = len(self.events)
        if n == 0:
            return 0.0
        return (self.bad / n) / budget

    def __len__(self) -> int:
        return len(self.events)


class SloMonitor:
    """Evaluates one :class:`SloSpec` over a stream of finished ops.

    Append to ``oplog.monitors``; :meth:`observe` is called once per
    finished record in deterministic close order.  Fire/clear
    transitions are recorded as breach events::

        {"slo": name, "state": "fire"|"clear", "t": sim_time,
         "fast_burn": ..., "slow_burn": ...}
    """

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self._fast = _Window(spec.fast_window)
        self._slow = _Window(spec.slow_window)
        #: Currently alerting?
        self.firing = False
        #: Fire/clear transition events in sim-time order.
        self.events: list[dict] = []
        #: Totals over the whole run (not windowed).
        self.observed = 0
        self.bad_total = 0

    def observe(self, rec: "OpRecord") -> None:
        spec = self.spec
        if not spec.covers(rec):
            return
        good = spec.is_good(rec)
        now = rec.end
        self.observed += 1
        if not good:
            self.bad_total += 1
        self._fast.add(now, good)
        self._slow.add(now, good)
        budget = spec.budget
        fast_burn = self._fast.burn(budget)
        slow_burn = self._slow.burn(budget)
        should_fire = (
            len(self._fast) >= spec.min_ops
            and fast_burn >= spec.burn_threshold
            and slow_burn >= spec.burn_threshold
        )
        if should_fire != self.firing:
            self.firing = should_fire
            self.events.append(
                {
                    "slo": spec.name,
                    "state": "fire" if should_fire else "clear",
                    "t": now,
                    "fast_burn": fast_burn,
                    "slow_burn": slow_burn,
                }
            )

    # -- reporting --------------------------------------------------------
    def summary(self) -> dict:
        spec = self.spec
        bad_fraction = self.bad_total / self.observed if self.observed else 0.0
        return {
            "slo": spec.name,
            "kind": spec.kind,
            "op_prefix": spec.op_prefix,
            "objective": spec.objective,
            "threshold": spec.threshold,
            "observed": self.observed,
            "bad": self.bad_total,
            "bad_fraction": bad_fraction,
            "overall_burn": bad_fraction / spec.budget,
            "alerts": sum(1 for e in self.events if e["state"] == "fire"),
            "firing": self.firing,
            "events": list(self.events),
        }

    def jsonl_lines(self) -> Iterable[str]:
        """One compact JSON object per breach event, in sim order."""
        for event in self.events:
            yield json.dumps(event, sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover
        state = "firing" if self.firing else "ok"
        return f"<SloMonitor {self.spec.name} {state} events={len(self.events)}>"


def render_slo_report(monitors: Iterable[SloMonitor]) -> str:
    """Human-readable SLO compliance table with breach timelines."""
    lines = ["SLO report"]
    for mon in monitors:
        s = mon.summary()
        target = (
            f"{s['threshold'] * 1e6:.0f}us" if s["kind"] == "latency" else "ok"
        )
        lines.append(
            f"  {s['slo']:<24} {s['kind']:<12} target {target:>8} @ "
            f"{s['objective']:.1%}  good {1 - s['bad_fraction']:.2%} "
            f"({s['observed'] - s['bad']}/{s['observed']})  "
            f"burn {s['overall_burn']:.2f}x  alerts {s['alerts']}"
        )
        for event in s["events"]:
            lines.append(
                f"    {event['state']:>5} @ t={event['t'] * 1e3:.3f}ms  "
                f"fast {event['fast_burn']:.1f}x  slow {event['slow_burn']:.1f}x"
            )
    if len(lines) == 1:
        lines.append("  (no monitors)")
    return "\n".join(lines)
