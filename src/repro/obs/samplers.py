"""Time-series samplers: periodic probes of live simulation state.

A :class:`Sampler` is a simulation process that wakes at a configurable
interval and records ``(sim time, value)`` points from a set of probes
into a :class:`~repro.obs.registry.ComponentMetrics` series.  Probes
are plain callables so any station, engine or cache can be watched:

    Sampler(sim, metrics, [("server.nic.rx.util", nic.rx.utilization)],
            interval=0.01)

Samplers are *opt-in*: they schedule real heap events (one timeout per
tick), so testbeds only start them when an observability bundle asks
for a sample interval.  The probes themselves are read-only — they
never reserve stations — so sampled and unsampled runs report identical
operation latencies; only the event heap differs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Sequence

from repro.obs.registry import ComponentMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

#: A probe: (series name, zero-argument callable returning a number).
Probe = tuple[str, Callable[[], float]]

#: Hard cap on ticks so a forgotten sampler cannot grow without bound.
DEFAULT_MAX_SAMPLES = 100_000


class Sampler:
    """Periodic sampling process bound to one simulator."""

    def __init__(
        self,
        sim: "Simulator",
        metrics: ComponentMetrics,
        probes: Sequence[Probe],
        interval: float,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.sim = sim
        self.metrics = metrics
        self.probes = list(probes)
        self.interval = interval
        self.max_samples = max_samples
        self.ticks = 0
        self._stopped = False
        self.process = sim.process(self._run(), name="obs-sampler")

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._stopped = True

    def _run(self) -> Generator:
        while not self._stopped and self.ticks < self.max_samples:
            now = self.sim.now
            for name, probe in self.probes:
                self.metrics.sample(name, now, float(probe()))
            self.ticks += 1
            yield self.sim.timeout(self.interval)
            if not self.sim.pending:
                # Everything else has drained; a free-running sampler
                # would keep the simulation alive forever.
                break


def gluster_probes(tb) -> list[Probe]:
    """Default probe set for a built GlusterTestbed: NIC utilisation,
    io-thread queue depth, client/server CPU backlog and MCD memory."""
    probes: list[Probe] = []
    for server in tb.servers:
        nic = tb.net.nic(server.node)
        probes.append((f"{server.node.name}.nic.rx.util", nic.rx.utilization))
        probes.append((f"{server.node.name}.nic.tx.util", nic.tx.utilization))
        probes.append((f"{server.node.name}.io.backlog", server.io_pool.backlog))
        probes.append((f"{server.node.name}.cpu.backlog", server.node.cpu.backlog))
    for mcd in tb.mcds:
        probes.append(
            (
                f"{mcd.node.name}.mem.bytes",
                lambda engine=mcd.engine: engine.stat_dict().get("bytes_allocated", 0),
            )
        )
        probes.append((f"{mcd.node.name}.cpu.backlog", mcd.node.cpu.backlog))
    if tb.clients:
        node = tb.clients[0].node
        probes.append((f"{node.name}.cpu.backlog", node.cpu.backlog))
    return probes
