"""Observability: span tracing, a unified metrics registry, samplers
and exporters for the IMCa simulation.

The paper explains IMCa's wins in terms of *where time goes* — client
CPU, IPoIB round-trips, MCD lookup, server dispatch, disk — and this
package makes that decomposition measurable:

* :mod:`repro.obs.trace` — ``SimTracer`` records nested spans on
  sim-time boundaries through the full op path (client → CMCache →
  RPC → SMCache → disk, plus the MCD get/set path).  The default
  ``NULL_TRACER`` is a no-op: disabled tracing never touches the sim
  heap and never perturbs timing.
* :mod:`repro.obs.registry` — ``MetricsRegistry`` owns named
  ``Counter`` / ``OnlineStats`` / ``Histogram`` instances per
  component, replacing ad-hoc metric bags, with snapshot/merge.
* :mod:`repro.obs.samplers` — a sim process sampling NIC utilisation,
  queue depths and MCD memory at a configurable interval.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto), JSONL metrics snapshots, and the
  ASCII per-tier latency-breakdown table.
* :mod:`repro.obs.context` — the ``Observability`` bundle testbed
  builders consume, plus the active-capture context the CLI uses to
  route ``--trace-out`` / ``--metrics-out`` artifacts.

Layer 2 (per-op lifecycle; answers "why was *this* op slow"):

* :mod:`repro.obs.oplog` — ring-buffer-capped per-operation records
  (identity, per-tier critical-path time, outcome tags, retry/failover
  counts, degraded-MCD set) populated from the span stack.
* :mod:`repro.obs.tail` — p99+ exemplar selection and slow-vs-median
  tier attribution ("why-slow" reports).
* :mod:`repro.obs.slo` — sim-time SLO monitors with fast/slow
  multi-window burn-rate alerting, wired into ``repro chaos``.

Quickstart::

    from repro import build_gluster_testbed, TestbedConfig
    from repro.obs import Observability
    from repro.obs.export import write_chrome_trace, render_tier_breakdown

    obs = Observability(trace=True)
    tb = build_gluster_testbed(TestbedConfig(num_clients=2, num_mcds=1), obs=obs)
    # ... run a workload ...
    print(render_tier_breakdown(obs.tracer))
    write_chrome_trace(obs.tracer, "trace.json")
"""

from repro.obs.context import Observability, ObsRequest, active_request, make_observability, observing
from repro.obs.oplog import OpLog, OpRecord
from repro.obs.registry import ComponentMetrics, MetricsRegistry
from repro.obs.samplers import Sampler
from repro.obs.slo import SloMonitor, SloSpec, render_slo_report
from repro.obs.tail import render_why_slow, tail_summary
from repro.obs.trace import NULL_TRACER, NullTracer, SimTracer, SpanRecord, TIERS

__all__ = [
    "ComponentMetrics",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "ObsRequest",
    "OpLog",
    "OpRecord",
    "Sampler",
    "SimTracer",
    "SloMonitor",
    "SloSpec",
    "SpanRecord",
    "TIERS",
    "active_request",
    "make_observability",
    "observing",
    "render_slo_report",
    "render_why_slow",
    "tail_summary",
]
