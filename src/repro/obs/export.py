"""Exporters: Chrome trace JSON, JSONL metrics, ASCII tier breakdown.

Three consumers, three formats:

* :func:`write_chrome_trace` — the Chrome ``trace_event`` array format
  (``ph: "X"`` complete events plus thread-name metadata), loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.  ``ts``/``dur`` are
  simulation time in microseconds.
* :func:`write_metrics_jsonl` — one JSON object per registry component
  (counters, timers, histogram summaries, sampler series), machine
  friendly for benchmark harnesses.
* :func:`render_tier_breakdown` — the human-readable per-tier latency
  table (client CPU / network / MCD / server / disk) with p50/p95/p99.
* :func:`write_oplog_jsonl` — one JSON object per client-visible op
  (the observability-layer-2 lifecycle records; see repro.obs.oplog).

All outputs are deterministic: keys are sorted and values derive only
from simulation state, so same-seed runs export byte-identical files.
"""

from __future__ import annotations

import json
import warnings
from typing import TYPE_CHECKING, Optional

from repro.obs.trace import TIERS
from repro.util.units import fmt_time

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.oplog import OpLog
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import SimTracer


#: Human labels for the tier keys in breakdown tables.
TIER_LABELS = {
    "client": "client CPU",
    "network": "network",
    "mcd": "MCD",
    "server": "server",
    "disk": "disk",
}


# --------------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------------- #
def chrome_trace_events(tracer: "SimTracer") -> list[dict]:
    """Spans as Chrome ``trace_event`` dicts (metadata first)."""
    events: list[dict] = []
    for tid, name in tracer.track_names():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for rec in tracer.spans:
        events.append(
            {
                "name": rec.name,
                "cat": rec.tier,
                "ph": "X",
                "ts": round(rec.start * 1e6, 3),
                "dur": round((rec.end - rec.start) * 1e6, 3),
                "pid": 1,
                "tid": rec.tid,
            }
        )
    return events


#: One warning per process for truncated trace exports (a long run can
#: hit the span cap thousands of times; one notice is enough).
_dropped_warned = False


def write_chrome_trace(tracer: "SimTracer", path: str) -> int:
    """Write the trace JSON array; returns the number of events.

    Spans past the tracer's retention limit still feed the tier/op
    histograms but are absent from the export; warn (once) so a
    truncated trace is never mistaken for the whole run.
    """
    global _dropped_warned
    if tracer.dropped and not _dropped_warned:
        _dropped_warned = True
        warnings.warn(
            f"trace export truncated: {tracer.dropped} span(s) beyond the "
            f"{tracer.limit}-span retention limit are not in {path} "
            "(aggregate tier/op statistics still include them)",
            RuntimeWarning,
            stacklevel=2,
        )
    events = chrome_trace_events(tracer)
    with open(path, "w") as fh:
        json.dump(events, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return len(events)


# --------------------------------------------------------------------------- #
# Per-op lifecycle JSONL
# --------------------------------------------------------------------------- #
def write_oplog_jsonl(oplog: "OpLog", path: str) -> int:
    """Write one JSON line per retained op record; returns the count."""
    n = 0
    with open(path, "w") as fh:
        for line in oplog.jsonl_lines():
            fh.write(line + "\n")
            n += 1
    return n


# --------------------------------------------------------------------------- #
# JSONL metrics snapshots
# --------------------------------------------------------------------------- #
def registry_jsonl_lines(registry: "MetricsRegistry") -> list[str]:
    """One compact JSON object per component, sorted by name."""
    lines = []
    for name, snap in registry.snapshot().items():
        lines.append(
            json.dumps({"component": name, **snap}, sort_keys=True, separators=(",", ":"))
        )
    return lines


def write_metrics_jsonl(registry: "MetricsRegistry", path: str) -> int:
    """Write one JSON line per component; returns the line count."""
    lines = registry_jsonl_lines(registry)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def metrics_fingerprint(registry: "MetricsRegistry") -> str:
    """sha256 over the sorted JSONL snapshot: a run-identity hash.

    Two runs with equal fingerprints recorded the same counters, timer
    sums, histogram contents, and sample series — the determinism tests
    compare these across repeat runs and across ``--jobs N``.
    """
    import hashlib

    payload = "\n".join(registry_jsonl_lines(registry)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


# --------------------------------------------------------------------------- #
# Per-tier latency breakdown
# --------------------------------------------------------------------------- #
def tier_summaries(tracer: "SimTracer") -> dict[str, dict[str, float]]:
    """tier -> ``{n, p50, p95, p99, mean, max, total}`` of exclusive time,
    ordered client → network → MCD → server → disk."""
    out: dict[str, dict[str, float]] = {}
    known = [t for t in TIERS if t in tracer.tier_stats]
    extra = sorted(t for t in tracer.tier_stats if t not in TIERS)
    for tier in [*known, *extra]:
        hist = tracer.tier_stats[tier]
        out[tier] = {"n": hist.n, **hist.summary(), "total": hist.stats.total}
    return out


def render_tier_breakdown(tracer: "SimTracer", title: Optional[str] = None) -> str:
    """ASCII table decomposing traced time across the five tiers.

    Shares are of the total *exclusive* time over all tiers.  Because
    background work (update threads, pipelined multi-gets) overlaps the
    foreground op, tier totals can legitimately exceed end-to-end wall
    time; the table decomposes where simulated time was spent, not a
    single op's critical path.
    """
    summaries = tier_summaries(tracer)
    if not summaries:
        return "(no spans recorded — tracing disabled or no ops ran)"
    grand_total = sum(s["total"] for s in summaries.values()) or 1.0
    header = (
        f"{'tier':<12} {'spans':>8} {'mean':>10} {'p50':>10} "
        f"{'p95':>10} {'p99':>10} {'total':>10} {'share':>7}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for tier, s in summaries.items():
        lines.append(
            f"{TIER_LABELS.get(tier, tier):<12} {s['n']:>8} "
            f"{fmt_time(s['mean']):>10} {fmt_time(s['p50']):>10} "
            f"{fmt_time(s['p95']):>10} {fmt_time(s['p99']):>10} "
            f"{fmt_time(s['total']):>10} {s['total'] / grand_total:>6.1%}"
        )
    return "\n".join(lines)
