"""Span-based tracing on simulation time.

A *span* covers one tier's share of an operation: it opens when the
component enters its timed section and closes when the ``yield from``
unwinds.  Spans nest naturally — RPC handlers run in the caller's
process, so a ``client.stat`` span contains the request/response
network spans, the server dispatch span and the disk span — and the
tracer maintains one span stack per simulation process, so concurrently
interleaved clients never corrupt each other's nesting.

Two guarantees matter for the reproduction:

* **Determinism** — spans only read ``sim.now``; opening or closing a
  span never schedules a sim event, so traced and untraced runs report
  identical latencies, and same-seed traces are byte-identical.
* **Near-zero disabled cost** — the default :data:`NULL_TRACER` has
  ``enabled = False`` and hot paths branch on that single attribute;
  cold paths may use ``with tracer.span(...)`` directly, which on the
  null tracer is one method call returning a shared no-op context
  manager.

Per-tier accounting uses *exclusive* time: a span's duration minus the
durations of spans nested directly inside it on the same process.  The
five tiers of the paper's cost model are listed in :data:`TIERS`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.util.stats import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.oplog import OpLog, OpRecord
    from repro.sim.core import Simulator

#: The per-tier decomposition of an op (paper §4/§5 cost discussion).
TIERS = ("client", "network", "mcd", "server", "disk")

#: Default cap on retained span records (memory guard; excess spans
#: still feed tier statistics but are not exported).
DEFAULT_SPAN_LIMIT = 1_000_000


class SpanRecord:
    """One closed span: where sim time went in one tier visit."""

    __slots__ = ("name", "tier", "tid", "start", "end", "child_time")

    def __init__(
        self, name: str, tier: str, tid: int, start: float, end: float, child_time: float
    ) -> None:
        self.name = name
        self.tier = tier
        self.tid = tid
        self.start = start
        self.end = end
        self.child_time = child_time

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def exclusive(self) -> float:
        """Duration minus directly nested child spans (same process)."""
        return self.end - self.start - self.child_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, tier={self.tier!r}, "
            f"[{self.start:.9f}, {self.end:.9f}])"
        )


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every span is the shared no-op context manager.

    Components hold a reference to this by default; hot paths check
    ``tracer.enabled`` once and skip span construction entirely.  The
    oplog annotation API exists here as no-ops so cold paths may call
    it unconditionally; hot paths gate on ``tracer.oplog is not None``.
    """

    enabled = False
    #: No op log on a disabled tracer (annotation hot paths branch here).
    oplog = None

    def span(self, tier: str, name: str) -> _NullSpan:
        return _NULL_SPAN

    def op_set(self, **fields) -> None:
        pass

    def op_tag(self, tag: str) -> None:
        pass

    def op_count(self, name: str, by: int = 1) -> None:
        pass

    @property
    def spans(self) -> list:
        return []

    @property
    def tier_stats(self) -> dict:
        return {}

    @property
    def op_stats(self) -> dict:
        return {}

    def track_names(self) -> list:
        return []


#: The process-wide disabled tracer instance.
NULL_TRACER = NullTracer()


class _Span:
    """An open span; use as a context manager around ``yield from``."""

    __slots__ = ("tracer", "tier", "name", "start", "child_time", "_key")

    def __init__(self, tracer: "SimTracer", tier: str, name: str) -> None:
        self.tracer = tracer
        self.tier = tier
        self.name = name
        self.start = 0.0
        self.child_time = 0.0
        self._key = 0

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        self.start = tracer.sim.now
        self._key = tracer._track_key()
        stack = tracer._stack(self._key)
        if tracer.oplog is not None and not stack and self.tier == "client":
            # A root client-tier span is one client-visible operation:
            # open its lifecycle record alongside the span.
            tracer._open_ops[self._key] = tracer.oplog.begin(self.name, self.start)
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._close(self)
        return False


class SimTracer:
    """Collects spans against one :class:`~repro.sim.core.Simulator`.

    Tracks are simulation processes: each process that opens a span is
    assigned a small deterministic thread id (first-open order), which
    becomes the ``tid`` in the Chrome trace export.
    """

    enabled = True

    def __init__(
        self,
        sim: "Simulator",
        limit: int = DEFAULT_SPAN_LIMIT,
        oplog: Optional["OpLog"] = None,
    ) -> None:
        self.sim = sim
        self.limit = limit
        #: Per-op lifecycle log (None = layer 2 disabled, near-free).
        self.oplog = oplog
        #: track key -> the op record currently open on that process.
        self._open_ops: dict[int, "OpRecord"] = {}
        #: Closed spans in close order (deterministic).
        self.spans: list[SpanRecord] = []
        #: Spans not retained because ``limit`` was reached.
        self.dropped = 0
        #: tier -> histogram of *exclusive* span durations.
        self.tier_stats: dict[str, Histogram] = {}
        #: root span name (e.g. ``client.stat``) -> end-to-end durations.
        self.op_stats: dict[str, Histogram] = {}
        # Per-process span stacks and deterministic tid assignment,
        # keyed by the process's per-sim serial number.
        self._stacks: dict[int, list[_Span]] = {}
        self._tids: dict[int, tuple[int, str]] = {}
        self._next_tid = 0

    # -- span lifecycle ----------------------------------------------------
    def span(self, tier: str, name: str) -> _Span:
        """Open a span; use ``with tracer.span(tier, name):``."""
        return _Span(self, tier, name)

    def _track_key(self) -> int:
        proc = self.sim.active_process
        if proc is None:
            if 0 not in self._tids:
                self._tids[0] = (self._alloc_tid(), "main")
            return 0
        key = proc.serial
        if key not in self._tids:
            self._tids[key] = (self._alloc_tid(), proc.name)
        return key

    def _alloc_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def _stack(self, key: int) -> list[_Span]:
        stack = self._stacks.get(key)
        if stack is None:
            stack = self._stacks[key] = []
        return stack

    def _close(self, span: _Span) -> None:
        end = self.sim.now
        key = span._key
        stack = self._stacks[key]
        popped = stack.pop()
        assert popped is span, "span close order violated"
        duration = end - span.start
        root = not stack
        if root:
            del self._stacks[key]
            # A root span is one complete client-visible operation.
            ops = self.op_stats.get(span.name)
            if ops is None:
                ops = self.op_stats[span.name] = Histogram()
            ops.add(duration)
        else:
            stack[-1].child_time += duration
        tier = self.tier_stats.get(span.tier)
        if tier is None:
            tier = self.tier_stats[span.tier] = Histogram()
        tier.add(duration - span.child_time)
        if self.oplog is not None:
            rec = self._open_ops.get(key)
            if rec is not None:
                rec.add_tier(span.tier, duration - span.child_time)
                if root:
                    self.oplog.finish(self._open_ops.pop(key), end)
        if len(self.spans) < self.limit:
            self.spans.append(
                SpanRecord(
                    span.name, span.tier, self._tids[key][0], span.start, end, span.child_time
                )
            )
        else:
            self.dropped += 1

    # -- op-record annotations (layer 2) -----------------------------------
    def _current_op(self) -> Optional["OpRecord"]:
        """The op record owning the active process, walking the spawner
        chain so helper processes (multi-get batches, fill reads,
        fan-outs) attribute to the client op that spawned them."""
        proc = self.sim.active_process
        while proc is not None:
            rec = self._open_ops.get(proc.serial)
            if rec is not None:
                return rec
            proc = proc.parent
        return self._open_ops.get(0)

    def op_set(self, **fields) -> None:
        """Set identity fields (``client``/``path``/``nbytes``) on the
        current op record; silently a no-op without an oplog."""
        if self.oplog is None:
            return
        rec = self._current_op()
        if rec is None:
            self.oplog.orphan_annotations += 1
            return
        for name, value in fields.items():
            setattr(rec, name, value)

    def op_tag(self, tag: str) -> None:
        """Append an outcome tag to the current op record."""
        if self.oplog is None:
            return
        rec = self._current_op()
        if rec is None:
            self.oplog.orphan_annotations += 1
        else:
            rec.tag(tag)

    def op_count(self, name: str, by: int = 1) -> None:
        """Bump a named counter on the current op record."""
        if self.oplog is None:
            return
        rec = self._current_op()
        if rec is None:
            self.oplog.orphan_annotations += 1
        else:
            rec.count(name, by)

    # -- introspection -----------------------------------------------------
    def track_names(self) -> list[tuple[int, str]]:
        """``(tid, process name)`` pairs, sorted by tid."""
        return sorted((tid, name) for tid, name in self._tids.values())

    def tier_totals(self) -> dict[str, float]:
        """tier -> total exclusive seconds recorded."""
        return {t: h.stats.total for t, h in self.tier_stats.items()}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimTracer spans={len(self.spans)} tracks={len(self._tids)}>"
