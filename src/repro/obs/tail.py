"""Tail-latency attribution over per-op lifecycle records.

Aggregate tier histograms say where *total* time goes; the tail
analyzer answers where the time of the *slow* ops goes and how that
differs from a typical op.  For each op type it:

* computes exact percentiles over the retained records (the oplog keeps
  full durations, so no histogram-bucket quantisation here),
* splits the population into a *slow set* (duration >= p99) and a
  *median band* (the central 20% by rank),
* attributes mean exclusive tier time for both groups side by side —
  the tier whose share grows most from median to slow is the tail
  amplifier,
* keeps the top-k slowest records as exemplars with their outcome
  tags, counts and degraded-MCD set, which is usually enough to read
  off the "why" directly (miss + failover + retry, say).

Determinism: records are sorted by ``(duration, start)`` so ties break
on sim time, never on Python object identity; same-seed runs render
byte-identical reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.oplog import OpLog, OpRecord

#: Percentiles reported per op type.
PERCENTILES = (0.50, 0.90, 0.99, 0.999)


def _exact_percentile(sorted_durations: list[float], q: float) -> float:
    """Nearest-rank percentile over an ascending-sorted list."""
    n = len(sorted_durations)
    idx = min(n - 1, max(0, int(q * n)))
    return sorted_durations[idx]


def _mean_tiers(records: list["OpRecord"]) -> dict[str, float]:
    """tier -> mean exclusive seconds over ``records``."""
    if not records:
        return {}
    totals: dict[str, float] = {}
    for rec in records:
        for tier, seconds in rec.tiers.items():
            totals[tier] = totals.get(tier, 0.0) + seconds
    n = len(records)
    return {tier: totals[tier] / n for tier in sorted(totals)}


def tail_summary(
    oplog: "OpLog", *, slow_quantile: float = 0.99, exemplars: int = 3
) -> dict:
    """Per-op-type tail attribution over the oplog's retained records.

    Returns a JSON-safe dict keyed by op type::

        {"client.stat": {"count": ..., "percentiles": {"p50": ...},
                         "median_tiers": {...}, "slow_tiers": {...},
                         "slow_count": ..., "exemplars": [...]}, ...}
    """
    by_op: dict[str, list["OpRecord"]] = {}
    for rec in oplog.records:
        by_op.setdefault(rec.op, []).append(rec)

    out: dict[str, dict] = {}
    for op in sorted(by_op):
        recs = sorted(by_op[op], key=lambda r: (r.duration, r.start))
        durations = [r.duration for r in recs]
        n = len(recs)
        threshold = _exact_percentile(durations, slow_quantile)
        slow = [r for r in recs if r.duration >= threshold]
        # Central 20% by rank: what a typical op looks like.
        lo, hi = int(n * 0.40), max(int(n * 0.40) + 1, int(n * 0.60))
        median_band = recs[lo:hi]
        out[op] = {
            "count": n,
            "percentiles": {
                f"p{q * 100:g}": _exact_percentile(durations, q)
                for q in PERCENTILES
            },
            "slow_threshold": threshold,
            "slow_count": len(slow),
            "median_tiers": _mean_tiers(median_band),
            "slow_tiers": _mean_tiers(slow),
            # Slowest last in `recs`; report worst-first.
            "exemplars": [r.to_dict() for r in recs[-exemplars:][::-1]],
        }
    return out


def render_why_slow(summary: dict) -> str:
    """Human-readable "why-slow" report from :func:`tail_summary`."""
    lines = ["why-slow (p99+ vs median-band tier attribution)"]
    for op, s in summary.items():
        pcts = s["percentiles"]
        pct_str = "  ".join(f"{k}={v * 1e6:.0f}us" for k, v in pcts.items())
        lines.append(f"  {op}  n={s['count']}  {pct_str}")
        tiers = sorted(set(s["median_tiers"]) | set(s["slow_tiers"]))
        for tier in tiers:
            med = s["median_tiers"].get(tier, 0.0)
            slow = s["slow_tiers"].get(tier, 0.0)
            growth = f" ({slow / med:.1f}x)" if med > 0 and slow > 0 else ""
            lines.append(
                f"    {tier:<8} median {med * 1e6:8.1f}us   "
                f"slow {slow * 1e6:8.1f}us{growth}"
            )
        for ex in s["exemplars"]:
            tags = ",".join(ex["tags"]) or "-"
            counts = (
                " ".join(f"{k}={v}" for k, v in ex["counts"].items()) or "-"
            )
            degraded = (
                f" degraded={ex['degraded_mcds']}" if ex["degraded_mcds"] else ""
            )
            lines.append(
                f"    exemplar {ex['duration'] * 1e6:.0f}us "
                f"{ex['path'] or '-'} tags[{tags}] counts[{counts}]{degraded}"
            )
    if len(lines) == 1:
        lines.append("  (no ops recorded)")
    return "\n".join(lines)
