"""The `Observability` bundle and the active-capture context.

Testbed builders accept an optional :class:`Observability` bundle and
wire its tracer and metrics registry through every component they
construct.  The default bundle is fully disabled: the tracer is the
shared :data:`~repro.obs.trace.NULL_TRACER` and no sampler process is
started, so an uninstrumented testbed pays nothing.

The *capture context* connects the CLI to runner-internal testbeds.
Experiments build testbeds deep inside their run functions; the CLI
cannot hand them a bundle directly.  Instead it wraps the run in
``observing(ObsRequest(trace=True))``, and runners that support
instrumentation call :func:`make_observability` — which merges the
active request's wishes into the new bundle and publishes the bundle
back onto ``request.captures`` so the CLI can export its artifacts
afterwards.  Outside any ``observing`` block, ``make_observability``
returns a plain disabled bundle, so runners stay unconditional.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.obs.oplog import DEFAULT_OPLOG_LIMIT, OpLog
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import DEFAULT_SPAN_LIMIT, NULL_TRACER, SimTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Observability:
    """Everything one testbed needs to observe itself.

    Create with ``trace=True`` to request span tracing; the tracer is
    instantiated lazily by :meth:`bind` because it needs the simulator,
    which the testbed builder creates.  ``sample_interval`` (seconds of
    sim time) opts into the time-series sampler process.
    """

    def __init__(
        self,
        name: str = "obs",
        *,
        trace: bool = False,
        trace_limit: int = DEFAULT_SPAN_LIMIT,
        oplog: bool = False,
        oplog_limit: int = DEFAULT_OPLOG_LIMIT,
        sample_interval: Optional[float] = None,
    ) -> None:
        self.name = name
        self.registry = MetricsRegistry(name)
        # The oplog is populated from the span stack, so layer 2
        # implies layer 1.
        self.trace_requested = trace or oplog
        self.trace_limit = trace_limit
        #: Per-op lifecycle log (observability layer 2), or None.
        self.oplog: Optional[OpLog] = OpLog(oplog_limit) if oplog else None
        self.sample_interval = sample_interval
        self.tracer = NULL_TRACER
        #: Samplers started by the testbed builder (see cluster.py).
        self.samplers: list = []

    def bind(self, sim: "Simulator") -> "Observability":
        """Attach to a simulator, instantiating the tracer if requested.

        Builders call this once; binding an already-bound bundle to a
        second simulator is an error because spans from two clocks
        cannot share one trace.
        """
        if self.trace_requested:
            if self.tracer is not NULL_TRACER:
                if self.tracer.sim is not sim:
                    raise ValueError("Observability already bound to another simulator")
            else:
                self.tracer = SimTracer(sim, limit=self.trace_limit, oplog=self.oplog)
        # Stations only pay for per-visit wait statistics when someone
        # can observe them; a fully disabled bundle turns them off for
        # every station built against this simulator.
        sim.track_station_waits = bool(
            self.trace_requested or self.sample_interval
        )
        return self

    @property
    def tracing(self) -> bool:
        """True once a live tracer is attached."""
        return self.tracer.enabled

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Observability {self.name!r} trace={self.trace_requested} "
            f"sample_interval={self.sample_interval}>"
        )


@dataclass
class ObsRequest:
    """What the caller (usually the CLI) wants captured from runs
    executed inside an ``observing`` block."""

    trace: bool = False
    trace_limit: int = DEFAULT_SPAN_LIMIT
    oplog: bool = False
    oplog_limit: int = DEFAULT_OPLOG_LIMIT
    sample_interval: Optional[float] = None
    #: Bundles published by runners, in creation order.
    captures: list[Observability] = field(default_factory=list)


_active: Optional[ObsRequest] = None


def active_request() -> Optional[ObsRequest]:
    """The innermost active :class:`ObsRequest`, or ``None``."""
    return _active


@contextmanager
def observing(request: ObsRequest) -> Iterator[ObsRequest]:
    """Make *request* the active capture request for the block."""
    global _active
    previous = _active
    _active = request
    try:
        yield request
    finally:
        _active = previous


def make_observability(
    name: str,
    *,
    trace: bool = False,
    trace_limit: Optional[int] = None,
    oplog: bool = False,
    oplog_limit: Optional[int] = None,
    sample_interval: Optional[float] = None,
) -> Observability:
    """Build a bundle, honouring the active capture request.

    Explicit keyword wishes are OR-ed/overridden with the active
    request's, and the resulting bundle is appended to the request's
    ``captures`` so the caller of ``observing`` can collect it.  With no
    active request this returns a bundle with exactly the explicit
    settings (disabled by default).
    """
    req = active_request()
    if req is not None:
        trace = trace or req.trace
        oplog = oplog or req.oplog
        if trace_limit is None:
            trace_limit = req.trace_limit
        if oplog_limit is None:
            oplog_limit = req.oplog_limit
        if sample_interval is None:
            sample_interval = req.sample_interval
    obs = Observability(
        name,
        trace=trace,
        trace_limit=DEFAULT_SPAN_LIMIT if trace_limit is None else trace_limit,
        oplog=oplog,
        oplog_limit=DEFAULT_OPLOG_LIMIT if oplog_limit is None else oplog_limit,
        sample_interval=sample_interval,
    )
    if req is not None:
        req.captures.append(obs)
    return obs
