"""Byte-range version tracking.

Simulated files can be gigabytes; storing their literal bytes would be
prohibitive.  Instead each file tracks *which write last touched every
byte* in an :class:`IntervalVersionMap`: a sorted list of disjoint
``(start, end, version)`` intervals.  The logical content of byte ``i``
is a pure function of ``(file, i, version)``, so two reads return the
same bytes iff their interval lists agree — which is exactly the
property the IMCa coherency invariant ("a cached read returns what the
server holds") needs.  Sequential workloads coalesce into a handful of
intervals, so memory stays O(distinct write epochs), not O(bytes).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

#: Version value for never-written ("hole") bytes.
HOLE = 0


class IntervalVersionMap:
    """Disjoint, sorted, coalesced byte intervals -> version."""

    __slots__ = ("_starts", "_ends", "_vers")

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._vers: list[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        return iter(zip(self._starts, self._ends, self._vers))

    @property
    def end(self) -> int:
        """One past the highest written byte (0 if empty)."""
        return self._ends[-1] if self._ends else 0

    def write(self, start: int, end: int, version: int) -> None:
        """Record that bytes ``[start, end)`` now carry *version*."""
        if start < 0 or end < start:
            raise ValueError(f"bad range [{start}, {end})")
        if version <= HOLE:
            raise ValueError("version must be positive")
        if start == end:
            return
        starts, ends, vers = self._starts, self._ends, self._vers

        # Find all intervals overlapping or adjacent to [start, end);
        # adjacency matters so equal-version neighbours coalesce.
        lo = bisect_left(ends, start)  # first interval with end >= start
        hi = bisect_right(starts, end)  # first interval with start > end
        # Fragments of partially-overlapped neighbours to keep.
        keep: list[tuple[int, int, int]] = []
        for i in range(lo, hi):
            s, e, v = starts[i], ends[i], vers[i]
            if s < start:
                keep.append((s, start, v))
            if e > end:
                keep.append((end, e, v))
        new = sorted(keep + [(start, end, version)])
        # Coalesce adjacent equal-version pieces.
        merged: list[tuple[int, int, int]] = []
        for s, e, v in new:
            if merged and merged[-1][2] == v and merged[-1][1] == s:
                merged[-1] = (merged[-1][0], e, v)
            else:
                merged.append((s, e, v))
        self._starts[lo:hi] = [m[0] for m in merged]
        self._ends[lo:hi] = [m[1] for m in merged]
        self._vers[lo:hi] = [m[2] for m in merged]

    def read(self, start: int, end: int) -> list[tuple[int, int, int]]:
        """Versions covering ``[start, end)``, holes included.

        Returns a minimal list of ``(start, end, version)`` covering the
        whole request, with ``version == HOLE`` for unwritten gaps.
        """
        if start < 0 or end < start:
            raise ValueError(f"bad range [{start}, {end})")
        if start == end:
            return []
        out: list[tuple[int, int, int]] = []
        pos = start
        starts, ends, vers = self._starts, self._ends, self._vers
        i = bisect_right(ends, start)
        while pos < end and i < len(starts):
            s, e, v = starts[i], ends[i], vers[i]
            if s >= end:
                break
            if s > pos:
                out.append((pos, s, HOLE))
                pos = s
            take_end = min(e, end)
            out.append((pos, take_end, v))
            pos = take_end
            i += 1
        if pos < end:
            out.append((pos, end, HOLE))
        return out

    def max_version(self, start: int, end: int) -> int:
        """Highest version present in ``[start, end)`` (HOLE if none)."""
        return max((v for _, _, v in self.read(start, end)), default=HOLE)

    def check_invariants(self) -> None:
        """Raise AssertionError if internal structure is corrupt
        (sorted, disjoint, coalesced, positive versions)."""
        prev_end = -1
        prev_ver = None
        for s, e, v in self:
            assert s < e, f"empty interval ({s},{e})"
            assert v > HOLE, f"non-positive version {v}"
            assert s >= prev_end, "overlap or disorder"
            if s == prev_end:
                assert v != prev_ver, "uncoalesced neighbours"
            prev_end, prev_ver = e, v


def coalesce_spans(values: Iterable[int]) -> list[tuple[int, int]]:
    """Coalesce integers into maximal half-open runs ``[start, end)``.

    ``[3, 4, 5, 9, 11, 12] -> [(3, 6), (9, 10), (11, 13)]``.  Input may
    be unsorted and contain duplicates.  Used by the read path to turn
    a set of missing block indices into the fewest contiguous ranges
    (each range becomes one server fill read).
    """
    out: list[tuple[int, int]] = []
    for v in sorted(set(values)):
        if out and out[-1][1] == v:
            out[-1] = (out[-1][0], v + 1)
        else:
            out.append((v, v + 1))
    return out


def intervals_equal(
    a: Iterable[tuple[int, int, int]], b: Iterable[tuple[int, int, int]]
) -> bool:
    """Compare two interval lists as *content*: equal iff every byte has
    the same version (normalises fragmentation differences)."""

    def normalise(ivs: Iterable[tuple[int, int, int]]):
        out: list[tuple[int, int, int]] = []
        for s, e, v in ivs:
            if s == e:
                continue
            if out and out[-1][2] == v and out[-1][1] == s:
                out[-1] = (out[-1][0], e, v)
            else:
                out.append((s, e, v))
        return out

    return normalise(a) == normalise(b)
