"""Size and time units, formatting, and parsing.

Simulated time is a ``float`` in **seconds** everywhere in the codebase;
sizes are ``int`` **bytes**.  These helpers keep literals readable
(``4 * KiB``, ``35 * USEC``) and reports human-friendly.
"""

from __future__ import annotations

import re

#: Binary size units (bytes).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Time units (seconds).
USEC = 1e-6
MSEC = 1e-3

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([kmgt]i?b?|b)?\s*$", re.I)

_SIZE_MULT = {
    None: 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": 1024 * GiB,
    "tb": 1024 * GiB,
    "tib": 1024 * GiB,
}


def parse_size(text: str | int) -> int:
    """Parse ``"2K"``, ``"1.5MiB"``, ``"64"`` ... into bytes.

    Integers pass through unchanged.  Raises :class:`ValueError` on
    malformed input.
    """
    if isinstance(text, int):
        return text
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    number, unit = m.groups()
    mult = _SIZE_MULT[unit.lower() if unit else None]
    value = float(number) * mult
    if value != int(value):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(value)


def fmt_bytes(n: float) -> str:
    """Format a byte count: ``fmt_bytes(3 * MiB) == '3.0 MiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(n)} B"
            return f"{n:.1f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Format a duration with an appropriate unit (ns/us/ms/s)."""
    a = abs(seconds)
    if a == 0:
        return "0 s"
    if a < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if a < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if a < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def fmt_rate(bytes_per_sec: float) -> str:
    """Format a bandwidth, e.g. ``'417.3 MB/s'`` (decimal MB, like IOzone)."""
    a = abs(bytes_per_sec)
    if a < 1e3:
        return f"{bytes_per_sec:.1f} B/s"
    if a < 1e6:
        return f"{bytes_per_sec / 1e3:.1f} KB/s"
    if a < 1e9:
        return f"{bytes_per_sec / 1e6:.1f} MB/s"
    return f"{bytes_per_sec / 1e9:.2f} GB/s"
