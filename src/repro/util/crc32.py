"""CRC-32 (IEEE 802.3) implemented from scratch.

libmemcache uses CRC32 of the key to pick a memcached server
(``crc32(key) % nservers`` after folding); IMCa inherits that default
(paper §4.2, §5.1).  We implement the table-driven algorithm ourselves so
the placement function is self-contained, and verify it against
:func:`zlib.crc32` in the test suite.
"""

from __future__ import annotations

_POLY = 0xEDB88320


def _make_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_TABLE = _make_table()


def crc32(data: bytes | bytearray | memoryview | str, value: int = 0) -> int:
    """Return the CRC-32 checksum of *data*.

    Matches :func:`zlib.crc32` bit-for-bit.  ``str`` input is encoded as
    UTF-8 (memcached keys are byte strings; all keys IMCa generates are
    ASCII paths plus offsets).

    Parameters
    ----------
    data:
        The bytes to checksum.
    value:
        Running checksum from a previous call, for incremental use.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    crc = (~value) & 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return (~crc) & 0xFFFFFFFF


def memcache_hash(key: bytes | str) -> int:
    """The key hash used by libmemcache's default CRC32 distribution.

    libmemcache folds the CRC to 16 bits: ``(crc32(key) >> 16) & 0x7fff``.
    The fold keeps the distribution uniform while avoiding the low-order
    bytes, which for short keys vary little.
    """
    return (crc32(key) >> 16) & 0x7FFF
