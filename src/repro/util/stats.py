"""Online statistics, histograms and named counters.

Workloads record per-operation latencies; these classes accumulate them
without retaining every sample (the paper's benchmarks average 1024
operations per record size — at paper scale a naive list would hold tens
of millions of floats).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class OnlineStats:
    """Welford's online mean/variance with min/max tracking."""

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def merge(self, other: "OnlineStats") -> None:
        """Fold *other* into *self* (parallel variance merge)."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineStats(n={self.n}, mean={self.mean:.3g}, stdev={self.stdev:.3g})"


class Histogram:
    """Log-scaled latency histogram.

    Buckets are powers of ``base`` starting at ``lo``; everything below
    ``lo`` lands in bucket 0 and everything above the top bucket in the
    last.  Exposes approximate percentiles.
    """

    def __init__(self, lo: float = 1e-7, hi: float = 10.0, base: float = 2.0) -> None:
        if not (lo > 0 and hi > lo and base > 1):
            raise ValueError("require lo > 0, hi > lo, base > 1")
        self.lo = lo
        self.base = base
        self._log_lo = math.log(lo, base)
        nbuckets = int(math.ceil(math.log(hi / lo, base))) + 2
        self.counts = [0] * nbuckets
        self.stats = OnlineStats()

    @classmethod
    def like(cls, other: "Histogram") -> "Histogram":
        """An empty histogram with *other*'s exact bucketing.

        The constructor derives the bucket count from ``hi``, which is
        not retained; cloning through it can therefore produce a
        mergeable-looking histogram with a different bucket count.
        ``like`` copies the bucket layout directly, so the clone always
        merges back into (and accepts merges from) the original.
        """
        clone = cls(lo=other.lo, base=other.base)
        clone.counts = [0] * len(other.counts)
        return clone

    def _bucket(self, x: float) -> int:
        if x <= self.lo:
            return 0
        idx = int(math.log(x, self.base) - self._log_lo) + 1
        return min(idx, len(self.counts) - 1)

    def add(self, x: float) -> None:
        self.counts[self._bucket(x)] += 1
        self.stats.add(x)

    @property
    def n(self) -> int:
        return self.stats.n

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (0 < p <= 100).

        Returns the *upper edge* of the bucket containing that rank —
        ``lo * base**i`` for bucket ``i`` — clamped to the observed
        maximum, so the result never exceeds any recorded sample.  The
        clamp matters at both extremes: bucket 0 collects values at or
        below ``lo`` (which may be far below it), and the overflow
        bucket collects everything above ``hi``; without it those
        buckets would report edges no sample ever reached.
        ``percentile(100)`` therefore equals the exact maximum.
        """
        if not 0 < p <= 100:
            raise ValueError("p must be in (0, 100]")
        if self.n == 0:
            # No samples: any number would be an invention (the clamp
            # below would yield -inf).  Callers wanting a soft default
            # should check ``n`` first, as ``summary()`` does.
            raise ValueError("percentile of an empty histogram is undefined")
        rank = math.ceil(self.n * p / 100.0)
        seen = 0
        edge = self.lo * self.base ** (len(self.counts) - 1)
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                edge = self.lo * self.base ** i
                break
        return min(edge, self.stats.max)

    def summary(self) -> dict[str, float]:
        """``{p50, p95, p99, mean, max}`` — the exporters' digest.

        An empty histogram reports explicit zeros (not the raising
        :meth:`percentile`): exporters tabulate dozens of histograms
        and an idle component must not abort the export.
        """
        if self.n == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "mean": self.stats.mean,
            "max": self.stats.max,
        }

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into *self*; bucketings must be identical.

        A positional merge across different layouts would silently
        misfile every sample, so this raises — naming both layouts so
        the mismatched construction site is findable.
        """
        if (
            other.lo != self.lo
            or other.base != self.base
            or len(other.counts) != len(self.counts)
        ):
            raise ValueError(
                "cannot merge histograms with different bucketings: "
                f"self(lo={self.lo!r}, base={self.base!r}, "
                f"buckets={len(self.counts)}) vs "
                f"other(lo={other.lo!r}, base={other.base!r}, "
                f"buckets={len(other.counts)})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.stats.merge(other.stats)


@dataclass
class Counter:
    """A named bag of integer counters (hits, misses, evictions, ...)."""

    values: dict[str, int] = field(default_factory=dict)

    def inc(self, name: str, by: int = 1) -> None:
        # Hot path (one or more increments per simulated op): in-place
        # add with an EAFP miss branch beats dict.get by ~40%.
        try:
            self.values[name] += by
        except KeyError:
            self.values[name] = by

    def get(self, name: str, default: int = 0) -> int:
        return self.values.get(name, default)

    def merge(self, other: "Counter") -> None:
        for k, v in other.values.items():
            self.inc(k, v)

    def as_dict(self) -> dict[str, int]:
        return dict(self.values)

    def __getitem__(self, name: str) -> int:
        return self.get(name)
