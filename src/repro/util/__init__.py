"""Utility substrate shared by every other subpackage.

This package deliberately has no dependencies on the rest of :mod:`repro`
so that any module may import it freely.
"""

from repro.util.crc32 import crc32
from repro.util.units import (
    KiB,
    MiB,
    GiB,
    USEC,
    MSEC,
    fmt_bytes,
    fmt_time,
    fmt_rate,
    parse_size,
)
from repro.util.stats import OnlineStats, Histogram, Counter

__all__ = [
    "crc32",
    "KiB",
    "MiB",
    "GiB",
    "USEC",
    "MSEC",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
    "parse_size",
    "OnlineStats",
    "Histogram",
    "Counter",
]
