"""OS-level caches: the server page cache and a generic LRU.

Fig 1's motivation ("bandwidth ... falls off as the server runs out of
memory and is forced to fetch data from the disk") is a pure page-cache
working-set effect; :class:`PageCache` models presence/eviction of 4 KiB
pages under a byte budget.
"""

from repro.oscache.lru import LruCache
from repro.oscache.pagecache import PageCache

__all__ = ["PageCache", "LruCache"]
