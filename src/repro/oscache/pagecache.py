"""The server's page cache: presence/eviction model for file pages.

Stores no data — file content identity lives in the local FS's interval
maps — only *which* 4 KiB pages are memory-resident, under a byte
budget with LRU eviction.  ``lookup`` returns the missing sub-ranges
that must come from disk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.util.stats import Counter


class PageCache:
    """Byte-budgeted LRU cache of (file_id, page_index) residency."""

    def __init__(self, capacity_bytes: int, page_size: int = 4096) -> None:
        if capacity_bytes < page_size:
            raise ValueError("capacity must hold at least one page")
        if page_size < 512:
            raise ValueError("page_size must be >= 512")
        self.capacity_bytes = capacity_bytes
        self.page_size = page_size
        self.capacity_pages = capacity_bytes // page_size
        self._pages: OrderedDict[tuple[Hashable, int], None] = OrderedDict()
        self.stats = Counter()

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * self.page_size

    def _page_range(self, offset: int, size: int) -> range:
        if offset < 0 or size < 0:
            raise ValueError("negative offset/size")
        first = offset // self.page_size
        last = (offset + size - 1) // self.page_size if size else first - 1
        return range(first, last + 1)

    def lookup(self, file_id: Hashable, offset: int, size: int) -> list[tuple[int, int]]:
        """Probe pages covering ``[offset, offset+size)``.

        Promotes resident pages and returns the **missing byte ranges**
        (page-aligned, merged); an empty list means a full hit.
        """
        missing: list[tuple[int, int]] = []
        for page in self._page_range(offset, size):
            key = (file_id, page)
            if key in self._pages:
                self._pages.move_to_end(key)
                self.stats.inc("page_hits")
            else:
                self.stats.inc("page_misses")
                start = page * self.page_size
                if missing and missing[-1][0] + missing[-1][1] == start:
                    missing[-1] = (missing[-1][0], missing[-1][1] + self.page_size)
                else:
                    missing.append((start, self.page_size))
        return missing

    def contains(self, file_id: Hashable, offset: int, size: int) -> bool:
        """Non-promoting residency check for the full range."""
        return all(
            (file_id, page) in self._pages for page in self._page_range(offset, size)
        )

    def insert(self, file_id: Hashable, offset: int, size: int) -> int:
        """Make all pages covering the range resident; returns number of
        pages evicted to fit."""
        evicted = 0
        for page in self._page_range(offset, size):
            key = (file_id, page)
            if key in self._pages:
                self._pages.move_to_end(key)
            else:
                self._pages[key] = None
            while len(self._pages) > self.capacity_pages:
                self._pages.popitem(last=False)
                evicted += 1
        self.stats.inc("evictions", evicted)
        return evicted

    def invalidate(self, file_id: Hashable, offset: int, size: int) -> None:
        """Drop residency for pages covering the range."""
        for page in self._page_range(offset, size):
            self._pages.pop((file_id, page), None)

    def invalidate_file(self, file_id: Hashable) -> None:
        """Drop every page of *file_id* (O(resident pages))."""
        doomed = [k for k in self._pages if k[0] == file_id]
        for k in doomed:
            del self._pages[k]

    def clear(self) -> None:
        self._pages.clear()
