"""A generic entry-count-bounded LRU cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator

from repro.util.stats import Counter


class LruCache:
    """Least-recently-used mapping with a maximum entry count.

    Used for the server's inode/dentry (metadata) cache and the Lustre
    client cache directory.  ``get`` promotes; ``put`` inserts/updates
    and evicts the coldest entry past capacity.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._map: OrderedDict[Hashable, Any] = OrderedDict()
        self.stats = Counter()

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._map

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._map)

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            value = self._map[key]
        except KeyError:
            self.stats.inc("misses")
            return default
        self._map.move_to_end(key)
        self.stats.inc("hits")
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Read without promoting (no stats)."""
        return self._map.get(key, default)

    def put(self, key: Hashable, value: Any) -> list[tuple[Hashable, Any]]:
        """Insert/update; returns the evicted ``(key, value)`` pairs."""
        if key in self._map:
            self._map.move_to_end(key)
        self._map[key] = value
        evicted = []
        while len(self._map) > self.capacity:
            evicted.append(self._map.popitem(last=False))
            self.stats.inc("evictions")
        return evicted

    def remove(self, key: Hashable) -> bool:
        """Drop *key*; returns whether it was present."""
        if key in self._map:
            del self._map[key]
            return True
        return False

    def clear(self) -> None:
        self._map.clear()
