"""End-to-end testbed benchmarks and the ``BENCH_e2e.json`` report.

Where :mod:`repro.bench.kernel` times the bare DES kernel, these time
the whole IMCa stack — client xlators, MCD array, server, brick — by
driving a fixed fop sequence through a fresh
:func:`~repro.cluster.build_gluster_testbed` and reporting *simulated
operations per wall-clock second*.  Three fixed workloads cover the
read path's regimes:

* **e2e_hit** — warm full-hit reads (the legacy multi-get path).
* **e2e_fill** — partial-hit fills: a block suffix is evicted before
  each read, so every op takes the coalesced-fill path.
* **e2e_hot** — hot-tier reads: repeat reads of open files served from
  the client-side LRU (no simulated round trips, pure xlator code).

The workloads are frozen: any change to their shape invalidates the
trajectory.  Tune the stack, not the benchmark.
"""

from __future__ import annotations

import time

from repro.bench.kernel import (
    BenchResult,
    _machine_info,  # noqa: F401  (re-exported shape helpers)
    _median,
)
from repro.util.units import KiB, MiB

#: Canonical report location (repo root when run from a checkout).
BENCH_E2E_FILE = "BENCH_e2e.json"

#: Frozen workload sizes.  Changing these invalidates the trajectory.
E2E_MCDS = 4
E2E_MCD_MEMORY = 32 * MiB
E2E_FILES = 4
E2E_BLOCKS = 16
E2E_ROUNDS = 24
E2E_HOT_BYTES = 256 * KiB


def _build(imca_kwargs: dict):
    from repro.cluster import TestbedConfig, build_gluster_testbed
    from repro.core.config import IMCaConfig

    return build_gluster_testbed(
        TestbedConfig(
            num_clients=1,
            num_mcds=E2E_MCDS,
            mcd_memory=E2E_MCD_MEMORY,
            imca=IMCaConfig(**imca_kwargs),
        )
    )


def _payload(j: int, size: int) -> bytes:
    return bytes((j * 31 + i) % 256 for i in range(size))


def _prepare(tb) -> tuple[dict[str, int], int, int]:
    """Create, warm and hold open the benchmark file bank."""
    from repro.workloads.base import drive

    bs = tb.cmcaches[0].config.block_size
    size = E2E_BLOCKS * bs
    paths = [f"/bench/e2e/f{j}" for j in range(E2E_FILES)]
    fds: dict[str, int] = {}

    def setup():
        client = tb.clients[0]
        for j, path in enumerate(paths):
            fd = yield from client.create(path)
            yield from client.write(fd, 0, size, _payload(j, size))
            yield from client.close(fd)
        for path in paths:
            fds[path] = yield from client.open(path)
        for path in paths:
            yield from client.stat(path)
            yield from client.read(fds[path], 0, size)

    drive(tb.sim, setup())
    return fds, bs, size


def _timed_ops(tb, body_gen) -> tuple[int, float]:
    """Drive *body_gen* (returns the op count) and time it."""
    from repro.workloads.base import drive

    t0 = time.perf_counter()
    ops = drive(tb.sim, body_gen)
    return ops, time.perf_counter() - t0


def _hit_run() -> tuple[int, float]:
    tb = _build({})
    fds, bs, size = _prepare(tb)

    def body():
        client = tb.clients[0]
        ops = 0
        for _ in range(E2E_ROUNDS):
            for path, fd in fds.items():
                yield from client.read(fd, 0, size)
                ops += 1
        return ops

    return _timed_ops(tb, body())


def _fill_run() -> tuple[int, float]:
    from repro.core.keys import data_key

    tb = _build({"partial_fills": True})
    fds, bs, size = _prepare(tb)
    n_miss = E2E_BLOCKS // 2
    evict_offs = [(E2E_BLOCKS - n_miss + i) * bs for i in range(n_miss)]

    def body():
        client = tb.clients[0]
        ops = 0
        for _ in range(E2E_ROUNDS):
            for path, fd in fds.items():
                for off in evict_offs:
                    key = data_key(path, off)
                    for mcd in tb.mcds:
                        mcd.engine.delete(key)
                yield from client.read(fd, 0, size)
                ops += 1
        return ops

    return _timed_ops(tb, body())


def _hot_run() -> tuple[int, float]:
    tb = _build({"hot_cache_bytes": E2E_HOT_BYTES})
    fds, bs, size = _prepare(tb)

    def body():
        client = tb.clients[0]
        ops = 0
        for _ in range(E2E_ROUNDS):
            for path, fd in fds.items():
                for idx in range(E2E_BLOCKS):
                    yield from client.read(fd, idx * bs, bs)
                    ops += 1
        return ops

    return _timed_ops(tb, body())


def _bench(name: str, run, rounds: int) -> BenchResult:
    runs = []
    ops = 0
    for _ in range(rounds):
        ops, elapsed = run()
        runs.append(ops / elapsed)
    return BenchResult(name, "ops_per_sec", _median(runs), runs, ops)


def run_e2e_benchmarks(quick: bool = False, rounds: int | None = None) -> dict:
    """Run the e2e suite; report shape matches the kernel suite so the
    same baseline/check plumbing applies."""
    import datetime

    from repro.bench.kernel import DEFAULT_ROUNDS, QUICK_ROUNDS, _git_sha

    k = rounds if rounds is not None else (QUICK_ROUNDS if quick else DEFAULT_ROUNDS)
    results = [
        _bench("e2e_hit", _hit_run, k),
        _bench("e2e_fill", _fill_run, k),
        _bench("e2e_hot", _hot_run, k),
    ]
    return {
        "schema": 1,
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": _machine_info(),
        "mode": "quick" if quick else "full",
        "rounds": k,
        "results": {r.name: r.to_dict() for r in results},
    }
