"""Wall-clock benchmark subsystem: the repo's performance trajectory.

``repro bench`` runs three fixed workloads against the discrete-event
kernel and writes ``BENCH_kernel.json`` — median-of-k events/sec plus
machine info and git sha — so every PR can prove (or disprove) a
speedup against the committed baseline:

* **kernel** — the bare DES kernel: processes yielding analytic
  station reservations on one shared :class:`FifoStation` (heap churn,
  process resume, timeout scheduling; no network, no harness).
* **hop** — the five-station network hop: concurrent senders pushing
  messages through ``CPU -> NIC tx -> wire -> NIC rx -> CPU``.
* **sweep** — a fixed fig6-style harness sweep (``fig6a`` at smoke
  scale) timed end to end.

``repro bench --suite e2e`` (:mod:`repro.bench.e2e`) times the whole
IMCa stack instead of the bare kernel — warm full-hit reads, forced
partial fills, hot-tier repeats — as simulated ops per wall-clock
second in ``BENCH_e2e.json``; the report shape is identical, so the
same baseline/check plumbing gates both suites.

``repro bench --suite scale`` (:mod:`repro.bench.scale`) measures the
kernel under large pending-event populations: 1k/10k/100k timer-storm
clients, A/B across the heap and calendar scheduler backends plus the
batched tier2 variant, as ops/sec in ``BENCH_scale.json`` with a
``speedup_vs_heap`` section.

The workloads are frozen: any change to their shape invalidates the
trajectory.  Tune the kernel, not the benchmark.
"""

from repro.bench.e2e import BENCH_E2E_FILE, run_e2e_benchmarks
from repro.bench.kernel import (
    BENCH_FILE,
    BenchResult,
    attach_baseline,
    baseline_from,
    check_against_baseline,
    load_report,
    run_benchmarks,
    write_report,
)
from repro.bench.profiling import (
    profile_artifact,
    profile_suite,
    render_profile,
    top_functions,
)
from repro.bench.scale import BENCH_SCALE_FILE, run_scale_benchmarks

__all__ = [
    "BENCH_E2E_FILE",
    "BENCH_FILE",
    "BENCH_SCALE_FILE",
    "BenchResult",
    "attach_baseline",
    "baseline_from",
    "check_against_baseline",
    "load_report",
    "profile_artifact",
    "profile_suite",
    "render_profile",
    "run_benchmarks",
    "run_e2e_benchmarks",
    "run_scale_benchmarks",
    "top_functions",
    "write_report",
]
