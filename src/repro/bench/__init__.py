"""Wall-clock benchmark subsystem: the repo's performance trajectory.

``repro bench`` runs three fixed workloads against the discrete-event
kernel and writes ``BENCH_kernel.json`` — median-of-k events/sec plus
machine info and git sha — so every PR can prove (or disprove) a
speedup against the committed baseline:

* **kernel** — the bare DES kernel: processes yielding analytic
  station reservations on one shared :class:`FifoStation` (heap churn,
  process resume, timeout scheduling; no network, no harness).
* **hop** — the five-station network hop: concurrent senders pushing
  messages through ``CPU -> NIC tx -> wire -> NIC rx -> CPU``.
* **sweep** — a fixed fig6-style harness sweep (``fig6a`` at smoke
  scale) timed end to end.

The workloads are frozen: any change to their shape invalidates the
trajectory.  Tune the kernel, not the benchmark.
"""

from repro.bench.kernel import (
    BENCH_FILE,
    BenchResult,
    attach_baseline,
    baseline_from,
    check_against_baseline,
    load_report,
    run_benchmarks,
    write_report,
)

__all__ = [
    "BENCH_FILE",
    "BenchResult",
    "attach_baseline",
    "baseline_from",
    "check_against_baseline",
    "load_report",
    "run_benchmarks",
    "write_report",
]
