"""Fixed kernel benchmarks and the ``BENCH_kernel.json`` report.

Each benchmark builds a fresh deterministic simulation, runs it to
completion, and reports throughput as *scheduled events per wall-clock
second* (``Simulator`` seeds every scheduled event with a sequence
number, so the event count is exact and identical across runs — only
the wall time varies).  Medians over k rounds absorb scheduler noise.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.net.fabric import Network, Node
from repro.net.profiles import profile
from repro.sim.core import Simulator
from repro.sim.station import FifoStation

#: Canonical report location (repo root when run from a checkout).
BENCH_FILE = "BENCH_kernel.json"

#: Frozen workload sizes.  Changing these invalidates the trajectory.
KERNEL_PROCS = 64
KERNEL_ITERS = 1200
HOP_SENDERS = 16
HOP_MSGS = 1500
HOP_SIZE = 4096
SWEEP_EXPERIMENT = "fig6a"
SWEEP_SCALE = "smoke"

DEFAULT_ROUNDS = 5
QUICK_ROUNDS = 3


@dataclass
class BenchResult:
    """One benchmark's outcome: median-of-k plus the raw rounds."""

    name: str
    metric: str  # "events_per_sec" or "seconds"
    median: float
    runs: list[float] = field(default_factory=list)
    events_per_run: Optional[int] = None

    def to_dict(self) -> dict:
        doc = {
            "metric": self.metric,
            "median": self.median,
            "runs": self.runs,
        }
        if self.events_per_run is not None:
            doc["events_per_run"] = self.events_per_run
        return doc


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# --------------------------------------------------------------------------- #
# workloads (frozen)
# --------------------------------------------------------------------------- #
def _kernel_workload() -> int:
    """Bare DES kernel: station reservations and process resumes only.

    Returns the number of scheduled events.
    """
    sim = Simulator()
    # Measure the unobserved configuration (what experiment runs pay).
    sim.track_station_waits = False
    station = FifoStation(sim, servers=4, name="bench")

    def worker(k: int):
        service = 1e-6 + (k % 7) * 1e-7
        for _ in range(KERNEL_ITERS):
            yield station.run(service)

    for k in range(KERNEL_PROCS):
        sim.process(worker(k), name=f"w{k}")
    sim.run()
    return sim._seq


def _hop_workload() -> int:
    """Five-station network hop: senders hammering one receiver."""
    sim = Simulator()
    sim.track_station_waits = False
    net = Network(sim, profile("ipoib"))
    src = Node(sim, "bench-src")
    dst = Node(sim, "bench-dst")
    net.attach(src)
    net.attach(dst)

    def sender(k: int):
        for _ in range(HOP_MSGS):
            yield net.transfer(src, dst, HOP_SIZE)

    for k in range(HOP_SENDERS):
        sim.process(sender(k), name=f"s{k}")
    sim.run()
    return sim._seq


def _time_events(workload) -> tuple[int, float]:
    t0 = time.perf_counter()
    events = workload()
    return events, time.perf_counter() - t0


def bench_kernel(rounds: int) -> BenchResult:
    runs = []
    events = 0
    for _ in range(rounds):
        events, elapsed = _time_events(_kernel_workload)
        runs.append(events / elapsed)
    return BenchResult("kernel", "events_per_sec", _median(runs), runs, events)


def bench_hop(rounds: int) -> BenchResult:
    runs = []
    events = 0
    for _ in range(rounds):
        events, elapsed = _time_events(_hop_workload)
        runs.append(events / elapsed)
    return BenchResult("hop", "events_per_sec", _median(runs), runs, events)


def bench_sweep(rounds: int) -> BenchResult:
    """A fixed fig6-style harness sweep, timed end to end (seconds)."""
    from repro.harness import get

    exp = get(SWEEP_EXPERIMENT)
    runs = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        exp.run(SWEEP_SCALE)
        runs.append(time.perf_counter() - t0)
    return BenchResult("sweep", "seconds", _median(runs), runs)


# --------------------------------------------------------------------------- #
# report plumbing
# --------------------------------------------------------------------------- #
def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count(),
    }


def run_benchmarks(quick: bool = False, rounds: Optional[int] = None) -> dict:
    """Run the suite; ``quick`` drops the harness sweep and uses fewer
    rounds (workload sizes never change, so quick and full events/sec
    are directly comparable)."""
    k = rounds if rounds is not None else (QUICK_ROUNDS if quick else DEFAULT_ROUNDS)
    results = [bench_kernel(k), bench_hop(k)]
    if not quick:
        results.append(bench_sweep(k))
    return {
        "schema": 1,
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": _machine_info(),
        "mode": "quick" if quick else "full",
        "rounds": k,
        "results": {r.name: r.to_dict() for r in results},
    }


def attach_baseline(report: dict, baseline: Optional[dict]) -> dict:
    """Carry a baseline section into *report* and compute speedups."""
    if baseline is None:
        return report
    report["baseline"] = baseline
    speedup = {}
    for name, doc in report["results"].items():
        base = baseline.get("results", {}).get(name)
        if doc["metric"] == "events_per_sec" and base and base.get("median"):
            speedup[name] = doc["median"] / base["median"]
        elif doc["metric"] == "seconds" and base and doc["median"]:
            speedup[name] = base["median"] / doc["median"]
    report["speedup_vs_baseline"] = speedup
    return report


def baseline_from(report: dict, note: str = "") -> dict:
    """Condense a report into a baseline section for future comparisons."""
    return {
        "git_sha": report.get("git_sha"),
        "timestamp": report.get("timestamp"),
        "machine": report.get("machine"),
        "note": note,
        "results": {
            name: {"metric": doc["metric"], "median": doc["median"]}
            for name, doc in report["results"].items()
        },
    }


def write_report(path: str, report: dict) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check_against_baseline(
    report: dict,
    committed: dict,
    tolerance: float = 0.30,
    suite: str = "kernel",
    missing_ok: bool = False,
) -> list[str]:
    """Compare a fresh *report* to the *committed* report's results.

    Returns a list of human-readable failures (empty == pass), each
    naming the suite, benchmark, and metric that regressed — a CI log
    must say *what* fell below the floor, not just that something did.
    Only rate benchmarks (``*_per_sec``: the kernel's events/sec, the
    e2e/scale suites' ops/sec) gate: wall-seconds of the sweep depend
    on the harness workload, which PRs legitimately grow.

    ``missing_ok`` skips committed results absent from the fresh run
    instead of failing on them — quick-mode runs measure a subset of
    the full committed suite (e.g. only the 1k scale point).
    """
    failures = []
    for name, doc in committed.get("results", {}).items():
        metric = doc.get("metric", "")
        if not metric.endswith("_per_sec"):
            continue
        fresh = report.get("results", {}).get(name)
        if fresh is None:
            if not missing_ok:
                failures.append(
                    f"[suite={suite}] {name} ({metric}): missing from fresh run"
                )
            continue
        floor = doc["median"] * (1.0 - tolerance)
        if fresh["median"] < floor:
            failures.append(
                f"[suite={suite}] {name} ({metric}): fresh median "
                f"{fresh['median']:.0f} is below the committed "
                f"{doc['median']:.0f} - {tolerance:.0%} floor ({floor:.0f})"
            )
    return failures
