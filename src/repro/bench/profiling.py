"""cProfile wrapper for ``repro bench --profile``: hot-path triage.

The bench suites answer "how fast"; this module answers "where does
the time go".  ``repro bench --suite X --profile [N]`` wraps the whole
suite in :mod:`cProfile` and emits the top-N functions by cumulative
time, both as a text table on stdout and as a JSON artifact next to
the report (``<report>.profile.json``) so regressions in the *shape*
of the profile can be diffed across commits, not just the totals.

Profiling adds interpreter overhead (roughly 1.3-2x on this kernel's
call-heavy paths), so a profiled run never writes the benchmark report
or participates in the 30% regression gate — the numbers would gate
the profiler, not the kernel.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any

#: Default table depth.
TOP_DEFAULT = 25


def profile_suite(fn) -> tuple[Any, cProfile.Profile]:
    """Run ``fn()`` under cProfile; returns (result, profiler)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, profiler


def top_functions(profiler: cProfile.Profile, top: int = TOP_DEFAULT) -> list[dict]:
    """Flatten profiler stats into JSON-safe rows, hottest (by
    cumulative time) first."""
    stats = pstats.Stats(profiler)
    rows = []
    for (path, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
                "function": func,
                "file": path,
                "line": line,
            }
        )
    rows.sort(key=lambda r: (-r["cumtime_s"], r["file"], r["line"]))
    return rows[: max(1, top)]


def render_profile(rows: list[dict]) -> str:
    """Fixed-width text table, pstats-style, for terminal triage."""
    lines = [
        f"{'ncalls':>10} {'tottime':>9} {'cumtime':>9}  function",
    ]
    for r in rows:
        loc = f"{r['file']}:{r['line']}({r['function']})"
        lines.append(
            f"{r['ncalls']:>10} {r['tottime_s']:>9.3f} {r['cumtime_s']:>9.3f}  {loc}"
        )
    return "\n".join(lines)


def profile_artifact(suite: str, top: int, rows: list[dict]) -> dict:
    """JSON artifact shape for ``<report>.profile.json``."""
    return {"schema": 1, "suite": suite, "top": top, "rows": rows}
