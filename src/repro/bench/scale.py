"""Client-scale benchmarks and the ``BENCH_scale.json`` report.

Where :mod:`repro.bench.kernel` times small fixed workloads, this suite
measures how the kernel holds up as the *pending-event population*
grows: 1k/10k/100k simulated clients, each holding exactly one
outstanding timer at all times, hammering per-group NIC serialisers.
That is the regime the calendar-queue scheduler and batched event
delivery exist for (ROADMAP open item 1: million-user scenarios).

Three timer-storm variants run per client point:

* **heap** — per-visit pooled timeouts on the default binary-heap
  scheduler: the first speed tier, and the baseline.
* **calendar** — the *identical* workload on the calendar-queue
  backend.  Same simulated trajectory event for event (the run asserts
  the event counts match); only wall-clock differs.
* **tier2** — the second speed tier: calendar backend **plus** batched
  delivery (each client retires its op burst as one
  :meth:`~repro.sim.station.FifoStation.run_batch` wakeup) **plus**
  group-sharded execution via :mod:`repro.harness.sharding`.  Same
  simulated work (identical visit count and per-burst completion
  times), an order of magnitude fewer scheduler events.

The metric is **ops/sec**: simulated station visits retired per
wall-clock second.  All variants retire the same visit count, so the
``speedup_vs_heap`` section compares like with like; scheduled-event
counts are recorded per result as ``events_per_run``.

Clients are desynchronised arithmetically (no RNG): service demand and
start stagger derive from the global client id, so every variant,
backend, and shard count sees the same per-client parameters.

On top of the timer storm, the **end-to-end** points drive the real
IMCa stack — FUSE client → CMCache → memcached client → RPC endpoint
→ MCD/gluster server, every layer the production op path crosses —
at 100k and 1M clients (1k in quick mode).  Clients are packed into
independent *cells* of :data:`E2E_GROUP` concurrent processes sharing
one client stack, so same-instant bursts actually reach the endpoint
together; cells are the unit the sharding layer splits on.  Two
variants per point: ``e2e_scalar`` (one scalar reservation chain per
op) and ``e2e_fastpath`` (``IMCaConfig.fastpath``: RPC coalescing +
stat/get singleflight + server batch admission).  Both retire the
identical op count; the ``speedup_e2e`` section records the ratio.

Every point runs one *discarded warmup round* before the measured
rounds, so medians come from a warm process (allocator, bytecode, and
branch caches hot) — a cold first run used to skew ``scale_1k_tier2``
by ~2.4x.

The workloads are frozen: any change to their shape invalidates the
trajectory.  Tune the kernel, not the benchmark.
"""

from __future__ import annotations

import datetime
import time
from typing import Optional

from repro.bench.kernel import BenchResult, _git_sha, _machine_info, _median
from repro.harness.sharding import plan_shards, run_sharded
from repro.sim.core import SCHEDULERS, Simulator
from repro.sim.station import FifoStation
from repro.sim.sync import Barrier
from repro.workloads.base import drive

#: Canonical report location (repo root when run from a checkout).
BENCH_SCALE_FILE = "BENCH_scale.json"

#: Frozen workload shape.  Changing these invalidates the trajectory.
CLIENT_POINTS = (1_000, 10_000, 100_000)
QUICK_POINTS = (1_000,)
#: Clients sharing one single-server NIC serialiser; groups never share
#: state, so they are the independent unit the sharding layer splits on.
GROUP_SIZE = 10
OPS_PER_CLIENT = 20
#: Visits retired per batched wakeup in the tier2 variant.
BURST = 10

DEFAULT_ROUNDS = 3
QUICK_ROUNDS = 3

#: Frozen end-to-end workload shape (see module docstring).
E2E_POINTS = (100_000, 1_000_000)
E2E_QUICK_POINTS = (1_000,)
#: Concurrent client processes per cell.  One cell = one single-client
#: single-MCD testbed whose client stack all E2E_GROUP processes share,
#: so their same-instant bursts coalesce at the endpoint; distinct cells
#: share nothing and are the independent unit the sharding layer splits.
E2E_GROUP = 1_000
#: Each client performs one stat and one record read per run.
E2E_OPS_PER_CLIENT = 2
E2E_FILE_SIZE = 16 * 1024
E2E_RECORD = 2 * 1024
E2E_RECORDS = E2E_FILE_SIZE // E2E_RECORD
E2E_MCD_MEMORY = 4 * 1024 * 1024


def _label(clients: int) -> str:
    if clients >= 1_000_000 and clients % 1_000_000 == 0:
        return f"{clients // 1_000_000}m"
    return f"{clients // 1000}k"


def _launch(sim: Simulator, station: FifoStation, gid: int, batched: bool) -> None:
    """Install one timer-storm client as a callback chain.

    No generator process: each completion callback books the client's
    next visit directly, so per-event cost is almost pure scheduler —
    exactly what this suite wants to measure.  Every client holds one
    pending event at all times, keeping the pending population equal to
    the client count.
    """
    service = 1e-6 + (gid % 23) * 1e-7
    remaining = OPS_PER_CLIENT
    if batched:

        def fire(_ev) -> None:
            nonlocal remaining
            if remaining:
                take = BURST if remaining >= BURST else remaining
                remaining -= take
                station.run_batch([service] * take).callbacks.append(fire)

    else:

        def fire(_ev) -> None:
            nonlocal remaining
            if remaining:
                remaining -= 1
                station.run(service).callbacks.append(fire)

    kick = sim.timeout((gid % 101) * 1e-6)
    kick.callbacks.append(fire)


def _storm_shard(spec, backend: str, batched: bool) -> dict:
    """One shard of the timer storm: simulate a contiguous range of
    client *groups* (``spec`` ids are group ids — the independent unit)
    to completion and return summable metrics.
    """
    sim = Simulator(scheduler=backend)
    sim.track_station_waits = False
    for g in range(spec.client_lo, spec.client_hi):
        station = FifoStation(sim, name=f"nic{g}")
        for c in range(GROUP_SIZE):
            _launch(sim, station, g * GROUP_SIZE + c, batched)
    if spec.window_stop is None:
        sim.run()
    else:
        sim.run(until=spec.window_stop)
    return {
        "clients": spec.clients * GROUP_SIZE,
        "ops": spec.clients * GROUP_SIZE * OPS_PER_CLIENT,
        "events": sim._seq,
    }


def _storm_run(
    clients: int, backend: str, batched: bool, shards: int
) -> tuple[dict, float]:
    """Run one client point once; returns (merged metrics, seconds)."""
    specs = plan_shards(clients // GROUP_SIZE, shards)
    t0 = time.perf_counter()
    merged = run_sharded(_storm_shard, specs, backend, batched)
    elapsed = time.perf_counter() - t0
    if merged["ops"] != clients * OPS_PER_CLIENT:
        raise RuntimeError(
            f"scale bench dropped work: {merged['ops']} ops retired, "
            f"expected {clients * OPS_PER_CLIENT}"
        )
    return merged, elapsed


def _e2e_cell(fastpath: bool) -> tuple[int, int, int]:
    """Build, warm, and drive one end-to-end cell to completion.

    Returns ``(ops, events, rpc_coalesced)`` for the measured burst.
    The warm pass (create + stat + full record sweep) keeps the
    measured ops on the production hit path rather than timing cold
    fills; its ops are not counted.
    """
    from repro.cluster import TestbedConfig, build_gluster_testbed
    from repro.core.config import IMCaConfig

    tb = build_gluster_testbed(
        TestbedConfig(
            num_clients=1,
            num_mcds=1,
            mcd_memory=E2E_MCD_MEMORY,
            scheduler="calendar",
            imca=IMCaConfig(fastpath=fastpath),
        )
    )
    sim = tb.sim
    client = tb.clients[0]
    fds: dict[str, int] = {}

    def warm():
        fds["hot"] = yield from client.create("/e2e/hot")
        yield from client.write(fds["hot"], 0, E2E_FILE_SIZE, None)
        fds["data"] = yield from client.create("/e2e/data")
        yield from client.write(fds["data"], 0, E2E_FILE_SIZE, None)
        yield from client.stat("/e2e/hot")
        for k in range(E2E_RECORDS):
            yield from client.read(fds["data"], k * E2E_RECORD, E2E_RECORD)

    drive(sim, warm())

    barrier = Barrier(sim, E2E_GROUP)

    def proc(g: int):
        yield barrier.wait()
        yield from client.stat("/e2e/hot")
        yield from client.read(
            fds["data"], (g % E2E_RECORDS) * E2E_RECORD, E2E_RECORD
        )

    procs = [sim.process(proc(g)) for g in range(E2E_GROUP)]
    done = sim.all_of(procs)
    sim.run(until=done)
    coalesced = tb.fastpath_stats()["rpc_coalesced"] if fastpath else 0
    return E2E_GROUP * E2E_OPS_PER_CLIENT, sim._seq, coalesced


def _e2e_shard(spec, fastpath: bool) -> dict:
    """One shard of the end-to-end run: ``spec`` ids are cell ids."""
    ops = events = coalesced = 0
    for _ in range(spec.client_lo, spec.client_hi):
        o, e, c = _e2e_cell(fastpath)
        ops += o
        events += e
        coalesced += c
    return {
        "clients": spec.clients * E2E_GROUP,
        "ops": ops,
        "events": events,
        "rpc_coalesced": coalesced,
    }


def _e2e_run(clients: int, fastpath: bool, shards: int) -> tuple[dict, float]:
    """Run one end-to-end client point once; (merged metrics, seconds)."""
    if clients % E2E_GROUP:
        raise ValueError(f"e2e points must be multiples of {E2E_GROUP}")
    specs = plan_shards(clients // E2E_GROUP, shards)
    t0 = time.perf_counter()
    merged = run_sharded(_e2e_shard, specs, fastpath)
    elapsed = time.perf_counter() - t0
    if merged["ops"] != clients * E2E_OPS_PER_CLIENT:
        raise RuntimeError(
            f"e2e bench dropped work: {merged['ops']} ops retired, "
            f"expected {clients * E2E_OPS_PER_CLIENT}"
        )
    if fastpath and not merged["rpc_coalesced"]:
        raise RuntimeError("e2e fastpath run never coalesced an RPC burst")
    return merged, elapsed


def _bench_point(name: str, run_once, rounds: int) -> BenchResult:
    # One discarded warmup round: the first run in a fresh process pays
    # allocator growth and bytecode/branch warmup, skewing the median of
    # small round counts (scale_1k_tier2 measured 945k vs ~2.3M warm).
    run_once()
    runs = []
    events = 0
    for _ in range(rounds):
        merged, elapsed = run_once()
        events = merged["events"]
        runs.append(merged["ops"] / elapsed)
    return BenchResult(name, "ops_per_sec", _median(runs), runs, events)


def run_scale_benchmarks(
    quick: bool = False,
    rounds: Optional[int] = None,
    scheduler: Optional[str] = None,
    shards: int = 1,
) -> dict:
    """Run the scale suite; report shape matches the kernel suite so the
    same baseline/check plumbing applies.

    ``scheduler`` restricts the A/B: ``"heap"`` runs only the baseline
    variant, ``"calendar"`` only the calendar and tier2 variants,
    ``None`` runs all three.  ``shards`` is the shard count for the
    tier2 variant (wall-clock parallelism additionally needs an active
    :func:`~repro.harness.parallel.job_pool`; without one the shards
    run inline, which still exercises the deterministic merge).
    """
    if scheduler is not None and scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; have {SCHEDULERS}")
    k = rounds if rounds is not None else (QUICK_ROUNDS if quick else DEFAULT_ROUNDS)
    points = QUICK_POINTS if quick else CLIENT_POINTS
    results: list[BenchResult] = []
    for clients in points:
        per_point: dict[str, BenchResult] = {}
        if scheduler in (None, "heap"):
            per_point["heap"] = _bench_point(
                f"scale_{_label(clients)}_heap",
                lambda c=clients: _storm_run(c, "heap", False, 1),
                k,
            )
        if scheduler in (None, "calendar"):
            per_point["calendar"] = _bench_point(
                f"scale_{_label(clients)}_calendar",
                lambda c=clients: _storm_run(c, "calendar", False, 1),
                k,
            )
            per_point["tier2"] = _bench_point(
                f"scale_{_label(clients)}_tier2",
                lambda c=clients: _storm_run(c, "calendar", True, shards),
                k,
            )
        heap_r, cal_r = per_point.get("heap"), per_point.get("calendar")
        if heap_r and cal_r and heap_r.events_per_run != cal_r.events_per_run:
            # The backends must replay the identical trajectory; a count
            # drift means the calendar queue mis-ordered something.
            raise RuntimeError(
                f"backend divergence at {clients} clients: heap scheduled "
                f"{heap_r.events_per_run} events, calendar {cal_r.events_per_run}"
            )
        results.extend(per_point.values())

    # End-to-end points ride the calendar backend (the production speed
    # tier), so a heap-restricted A/B skips them.
    e2e_points = (E2E_QUICK_POINTS if quick else E2E_POINTS) if scheduler in (
        None,
        "calendar",
    ) else ()
    for clients in e2e_points:
        results.append(
            _bench_point(
                f"scale_{_label(clients)}_e2e_scalar",
                lambda c=clients: _e2e_run(c, False, shards),
                k,
            )
        )
        results.append(
            _bench_point(
                f"scale_{_label(clients)}_e2e_fastpath",
                lambda c=clients: _e2e_run(c, True, shards),
                k,
            )
        )

    report = {
        "schema": 1,
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": _machine_info(),
        "mode": "quick" if quick else "full",
        "rounds": k,
        "shards": shards,
        "results": {r.name: r.to_dict() for r in results},
    }
    speedup: dict[str, dict[str, float]] = {}
    for clients in points:
        base = report["results"].get(f"scale_{_label(clients)}_heap")
        if not base or not base["median"]:
            continue
        per = {}
        for variant in ("calendar", "tier2"):
            doc = report["results"].get(f"scale_{_label(clients)}_{variant}")
            if doc:
                per[variant] = doc["median"] / base["median"]
        if per:
            speedup[f"scale_{_label(clients)}"] = per
    if speedup:
        report["speedup_vs_heap"] = speedup
    e2e_speedup: dict[str, dict[str, float]] = {}
    for clients in e2e_points:
        base = report["results"].get(f"scale_{_label(clients)}_e2e_scalar")
        fast = report["results"].get(f"scale_{_label(clients)}_e2e_fastpath")
        if base and fast and base["median"]:
            e2e_speedup[f"scale_{_label(clients)}"] = {
                "fastpath": fast["median"] / base["median"]
            }
    if e2e_speedup:
        report["speedup_e2e"] = e2e_speedup
    return report
