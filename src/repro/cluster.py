"""Testbed builders: assemble complete simulated clusters.

Mirrors the paper's experimental setup (§5.1): a 64-node InfiniBand DDR
cluster of 8-core nodes; the GlusterFS server with an 8-disk RAID;
IPoIB transport everywhere; MCDs on independent nodes with up to 6 GB
of memory; Lustre with a separate MDS and 1 or 4 data servers.

Every experiment in the harness builds one of these testbeds from a
:class:`TestbedConfig` and runs workload processes against its clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.cmcache import CMCacheXlator
from repro.core.config import IMCaConfig
from repro.core.smcache import SMCacheXlator
from repro.gluster.client import GlusterClient
from repro.gluster.distribute import DistributeXlator
from repro.gluster.protocol import ClientProtocol
from repro.gluster.server import GlusterServer
from repro.gluster.xlator import Xlator
from repro.localfs.fs import LocalFS
from repro.lustre.client import LustreClient
from repro.lustre.mds import MetadataServer
from repro.lustre.ost import ObjectServer
from repro.lustre.striping import StripeLayout
from repro.memcached.client import MemcacheClient
from repro.memcached.daemon import MemcachedDaemon
from repro.memcached.hashing import selector as make_selector
from repro.net.fabric import Network, Node
from repro.net.profiles import profile
from repro.net.rpc import Endpoint
from repro.nfs.client import NfsClient
from repro.nfs.server import NfsServer
from repro.oscache.pagecache import PageCache
from repro.sim.core import Simulator
from repro.storage.raid import Raid0
from repro.util.units import GiB, MiB


@dataclass
class TestbedConfig:
    """Knobs shared by all three testbeds."""

    num_clients: int = 1
    transport: str = "ipoib"
    #: Cores per node (§5.1: 8-core Clovertown).
    cores: int = 8

    # -- file server ------------------------------------------------------
    #: Server page-cache budget (8 GB nodes; ~6 GB usable for cache).
    server_cache_bytes: int = 6 * GiB
    #: RAID members at the GlusterFS/NFS server (§5.1: 8 disks).
    raid_disks: int = 8
    #: glusterfsd io-thread count.
    io_threads: int = 2
    #: GlusterFS bricks (1 in the paper; >1 exercises distribute).
    num_bricks: int = 1

    # -- IMCa -----------------------------------------------------------------
    #: Number of MemCached daemons (0 = the paper's "NoCache").
    num_mcds: int = 0
    #: Memory each MCD may use (§5.1: "upto 6GB").
    mcd_memory: int = 6 * GiB
    #: Transport for cache-bank traffic; None = same fabric as the file
    #: system.  "ib-rdma" models the paper's §7 future-work idea of
    #: moving MCD traffic to native RDMA.
    mcd_transport: Optional[str] = None
    imca: IMCaConfig = field(default_factory=IMCaConfig)

    # -- Lustre ------------------------------------------------------------------
    #: Data servers (1DS / 4DS in §5).
    num_data_servers: int = 1
    stripe_size: int = 1 * MiB
    #: Per-client Lustre cache budget.
    lustre_client_cache: int = 1 * GiB
    ost_cache_bytes: int = 6 * GiB
    ost_disks: int = 2

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        if self.num_mcds < 0:
            raise ValueError("num_mcds must be >= 0")
        if self.num_bricks < 1:
            raise ValueError("num_bricks must be >= 1")


def _make_fs(sim: Simulator, cfg: TestbedConfig, name: str, disks: int, cache_bytes: int) -> LocalFS:
    device = Raid0(sim, disks=disks, name=f"{name}.raid")
    cache = PageCache(cache_bytes)
    return LocalFS(sim, device, cache, name=name)


# --------------------------------------------------------------------------- #
# GlusterFS (+ optional IMCa)
# --------------------------------------------------------------------------- #
@dataclass
class GlusterTestbed:
    """A built GlusterFS cluster, optionally fronted by IMCa."""

    sim: Simulator
    net: Network
    config: TestbedConfig
    servers: list[GlusterServer]
    mcds: list[MemcachedDaemon]
    clients: list[GlusterClient]
    cmcaches: list[Optional[CMCacheXlator]]
    smcaches: list[Optional[SMCacheXlator]]

    @property
    def server(self) -> GlusterServer:
        return self.servers[0]

    def mcd_stats(self) -> dict[str, int]:
        """Aggregated engine statistics across the MCD array (untimed)."""
        total: dict[str, int] = {}
        for mcd in self.mcds:
            for k, v in mcd.engine.stat_dict().items():
                total[k] = total.get(k, 0) + v
        return total

    def cm_stats(self) -> dict[str, int]:
        total: dict[str, int] = {}
        for cm in self.cmcaches:
            if cm is not None:
                for k, v in cm.metrics.as_dict().items():
                    total[k] = total.get(k, 0) + v
        return total


def build_gluster_testbed(cfg: Optional[TestbedConfig] = None) -> GlusterTestbed:
    """Assemble GlusterFS [+ IMCa when ``cfg.num_mcds > 0``]."""
    cfg = cfg or TestbedConfig()
    sim = Simulator()
    net = Network(sim, profile(cfg.transport))
    # Cache-bank traffic may ride a separate transport (§7 future work).
    cache_net = (
        net
        if cfg.mcd_transport is None
        else Network(sim, profile(cfg.mcd_transport), name="cache-net")
    )

    # MCD array.
    mcds = [
        MemcachedDaemon(
            sim, cache_net, Node(sim, f"mcd{i}", cores=cfg.cores), cfg.mcd_memory
        )
        for i in range(cfg.num_mcds)
    ]
    use_imca = bool(mcds)

    # Brick servers (one in the paper's configuration).
    servers: list[GlusterServer] = []
    smcaches: list[Optional[SMCacheXlator]] = []
    for b in range(cfg.num_bricks):
        snode = Node(sim, f"gfs-server{b}" if cfg.num_bricks > 1 else "gfs-server", cores=cfg.cores)
        fs = _make_fs(sim, cfg, f"brick{b}", cfg.raid_disks, cfg.server_cache_bytes)
        server_xlators: list[Xlator] = []
        smcache: Optional[SMCacheXlator] = None
        if use_imca:
            mc = MemcacheClient(
                Endpoint(cache_net, snode), mcds, make_selector(cfg.imca.selector)
            )
            smcache = SMCacheXlator(sim, mc, cfg.imca)
            server_xlators.append(smcache)
        servers.append(
            GlusterServer(sim, net, snode, fs, server_xlators, io_threads=cfg.io_threads)
        )
        smcaches.append(smcache)

    # Clients.
    clients: list[GlusterClient] = []
    cmcaches: list[Optional[CMCacheXlator]] = []
    for i in range(cfg.num_clients):
        cnode = Node(sim, f"client{i}", cores=cfg.cores)
        ep = Endpoint(net, cnode)
        protocols = [ClientProtocol(ep, server) for server in servers]
        bottom: Xlator = protocols[0] if len(protocols) == 1 else DistributeXlator(protocols)
        stack: list[Xlator] = []
        cmcache: Optional[CMCacheXlator] = None
        if use_imca:
            mc_ep = ep if cache_net is net else Endpoint(cache_net, cnode)
            mc = MemcacheClient(mc_ep, mcds, make_selector(cfg.imca.selector))
            cmcache = CMCacheXlator(mc, cfg.imca)
            stack.append(cmcache)
        stack.append(bottom)
        clients.append(GlusterClient(sim, cnode, Xlator.build_stack(stack)))
        cmcaches.append(cmcache)

    return GlusterTestbed(sim, net, cfg, servers, mcds, clients, cmcaches, smcaches)


# --------------------------------------------------------------------------- #
# Lustre
# --------------------------------------------------------------------------- #
@dataclass
class LustreTestbed:
    """A built Lustre cluster (MDS + OSTs + clients)."""

    sim: Simulator
    net: Network
    config: TestbedConfig
    mds: MetadataServer
    osts: list[ObjectServer]
    clients: list[LustreClient]


def build_lustre_testbed(cfg: Optional[TestbedConfig] = None) -> LustreTestbed:
    cfg = cfg or TestbedConfig()
    sim = Simulator()
    net = Network(sim, profile(cfg.transport))

    layout = StripeLayout(count=cfg.num_data_servers, stripe_size=cfg.stripe_size)
    mds_node = Node(sim, "mds", cores=cfg.cores)
    mds_fs = _make_fs(sim, cfg, "mdt", disks=2, cache_bytes=2 * GiB)
    mds = MetadataServer(sim, net, mds_node, mds_fs, layout)

    osts = []
    for i in range(cfg.num_data_servers):
        onode = Node(sim, f"ost{i}", cores=cfg.cores)
        ofs = _make_fs(sim, cfg, f"ost{i}", disks=cfg.ost_disks, cache_bytes=cfg.ost_cache_bytes)
        osts.append(ObjectServer(sim, net, onode, ofs, index=i))

    clients = []
    for i in range(cfg.num_clients):
        cnode = Node(sim, f"client{i}", cores=cfg.cores)
        ep = Endpoint(net, cnode)
        clients.append(
            LustreClient(sim, cnode, ep, mds, osts, cache_bytes=cfg.lustre_client_cache)
        )
    return LustreTestbed(sim, net, cfg, mds, osts, clients)


# --------------------------------------------------------------------------- #
# NFS
# --------------------------------------------------------------------------- #
@dataclass
class NFSTestbed:
    """A built single-server NFS cluster."""

    sim: Simulator
    net: Network
    config: TestbedConfig
    server: NfsServer
    clients: list[NfsClient]


def build_nfs_testbed(cfg: Optional[TestbedConfig] = None) -> NFSTestbed:
    cfg = cfg or TestbedConfig()
    sim = Simulator()
    net = Network(sim, profile(cfg.transport))
    snode = Node(sim, "nfs-server", cores=cfg.cores)
    fs = _make_fs(sim, cfg, "export", cfg.raid_disks, cfg.server_cache_bytes)
    server = NfsServer(sim, net, snode, fs)
    clients = []
    for i in range(cfg.num_clients):
        cnode = Node(sim, f"client{i}", cores=cfg.cores)
        ep = Endpoint(net, cnode)
        clients.append(NfsClient(sim, cnode, ep, server))
    return NFSTestbed(sim, net, cfg, server, clients)


def scaled(cfg: TestbedConfig, **overrides) -> TestbedConfig:
    """Convenience: copy a config with overrides (used by sweeps)."""
    return replace(cfg, **overrides)
