"""Testbed builders: assemble complete simulated clusters.

Mirrors the paper's experimental setup (§5.1): a 64-node InfiniBand DDR
cluster of 8-core nodes; the GlusterFS server with an 8-disk RAID;
IPoIB transport everywhere; MCDs on independent nodes with up to 6 GB
of memory; Lustre with a separate MDS and 1 or 4 data servers.

Every experiment in the harness builds one of these testbeds from a
:class:`TestbedConfig` and runs workload processes against its clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.cmcache import CMCacheXlator
from repro.core.config import IMCaConfig
from repro.core.smcache import SMCacheXlator
from repro.gluster.client import GlusterClient
from repro.gluster.distribute import DistributeXlator
from repro.gluster.protocol import ClientProtocol
from repro.gluster.server import GlusterServer
from repro.gluster.xlator import Xlator
from repro.localfs.fs import LocalFS
from repro.lustre.client import LustreClient
from repro.lustre.mds import MetadataServer
from repro.lustre.ost import ObjectServer
from repro.lustre.striping import StripeLayout
from repro.memcached.client import HealthPolicy, MemcacheClient
from repro.memcached.daemon import MemcachedDaemon
from repro.memcached.hashing import selector as make_selector
from repro.memcached.membership import ElasticController, McdMembership
from repro.memcached.tenancy import TenantArbiter
from repro.net.fabric import Network, Node
from repro.net.profiles import profile
from repro.net.rpc import Endpoint, RetryPolicy
from repro.nfs.client import NfsClient
from repro.nfs.server import NfsServer
from repro.obs.context import Observability
from repro.obs.registry import merged_counters
from repro.obs.samplers import Sampler, gluster_probes
from repro.obs.trace import NULL_TRACER
from repro.oscache.pagecache import PageCache
from repro.sim.core import Simulator
from repro.sim.rand import RandomStreams
from repro.storage.raid import Raid0
from repro.util.stats import Counter
from repro.util.units import GiB, MiB


@dataclass
class ResilienceConfig:
    """Failure-handling knobs for a testbed (all default-off: a config
    without one behaves byte-identically to the pre-fault-layer code).

    MCD traffic gets per-call deadlines plus health tracking (a slow or
    dead daemon is ejected and treated as a miss); brick traffic gets a
    deadline-free bounded-backoff retry loop (a brick holds the only
    copy of its data, so the client stalls through a flap rather than
    degrading).  All jitter/loss randomness derives from ``seed`` via
    named :class:`~repro.sim.rand.RandomStreams`.
    """

    #: Per-attempt deadline for MCD RPCs (seconds).
    mcd_timeout: float = 2e-3
    #: Retries after the first MCD attempt.
    mcd_retries: int = 1
    #: Retry budget for brick fops (must ride out a server flap).
    server_retries: int = 10
    backoff: float = 2e-4
    backoff_factor: float = 2.0
    max_backoff: float = 5e-3
    jitter: float = 0.1
    # -- MCD health tracking ------------------------------------------------
    eject_after: int = 2
    cooldown: float = 0.02
    purge_on_rejoin: bool = True
    #: Master seed for jitter and message-loss streams.
    seed: int = 0xFA17

    def __post_init__(self) -> None:
        if self.mcd_timeout <= 0:
            raise ValueError("mcd_timeout must be > 0")
        if min(self.mcd_retries, self.server_retries) < 0:
            raise ValueError("retry counts must be >= 0")


@dataclass
class TestbedConfig:
    """Knobs shared by all three testbeds."""

    num_clients: int = 1
    transport: str = "ipoib"
    #: Cores per node (§5.1: 8-core Clovertown).
    cores: int = 8
    #: DES scheduler backend: "heap", "calendar", or ``None`` to defer
    #: to the ``REPRO_SCHEDULER`` environment override (default heap).
    #: Either backend produces byte-identical results; "calendar" is
    #: faster at large client counts (see DESIGN §12).
    scheduler: Optional[str] = None

    # -- file server ------------------------------------------------------
    #: Server page-cache budget (8 GB nodes; ~6 GB usable for cache).
    server_cache_bytes: int = 6 * GiB
    #: RAID members at the GlusterFS/NFS server (§5.1: 8 disks).
    raid_disks: int = 8
    #: glusterfsd io-thread count.
    io_threads: int = 2
    #: GlusterFS bricks (1 in the paper; >1 exercises distribute).
    num_bricks: int = 1

    # -- IMCa -----------------------------------------------------------------
    #: Number of MemCached daemons (0 = the paper's "NoCache").
    num_mcds: int = 0
    #: Memory each MCD may use (§5.1: "upto 6GB").
    mcd_memory: int = 6 * GiB
    #: Transport for cache-bank traffic; None = same fabric as the file
    #: system.  "ib-rdma" models the paper's §7 future-work idea of
    #: moving MCD traffic to native RDMA.
    mcd_transport: Optional[str] = None
    imca: IMCaConfig = field(default_factory=IMCaConfig)
    #: Failure handling (timeouts/retries/health tracking); ``None``
    #: keeps the historical fail-fast behaviour byte-identically.
    resilience: Optional[ResilienceConfig] = None
    #: Live MCD membership: clients consult a mutable member set, and an
    #: :class:`~repro.memcached.membership.ElasticController` can
    #: add/drain/remove daemons mid-run (``mcd-add``/``mcd-drain``/
    #: ``mcd-remove`` fault events).  ``False`` freezes the array as a
    #: plain list, byte-identically to the historical paths.
    elastic: bool = False

    # -- Lustre ------------------------------------------------------------------
    #: Data servers (1DS / 4DS in §5).
    num_data_servers: int = 1
    stripe_size: int = 1 * MiB
    #: Per-client Lustre cache budget.
    lustre_client_cache: int = 1 * GiB
    ost_cache_bytes: int = 6 * GiB
    ost_disks: int = 2

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        if self.num_mcds < 0:
            raise ValueError("num_mcds must be >= 0")
        if self.num_bricks < 1:
            raise ValueError("num_bricks must be >= 1")
        # Replication needs R distinct daemons to hold R copies; a
        # config asking for more replicas than MCDs is a sizing mistake,
        # not something to silently clamp.
        if self.num_mcds and self.imca.replicas > self.num_mcds:
            raise ValueError(
                f"imca.replicas={self.imca.replicas} exceeds num_mcds={self.num_mcds}"
            )
        if self.elastic:
            if self.num_mcds < 1:
                raise ValueError("elastic membership needs num_mcds >= 1")
            # Replication fixes R owners per key; elastic remapping would
            # have to re-derive all R sets per window, which is not
            # supported — one owner per key under elasticity.
            if self.imca.replicas > 1:
                raise ValueError("elastic membership requires imca.replicas == 1")


def _make_fs(
    sim: Simulator,
    cfg: TestbedConfig,
    name: str,
    disks: int,
    cache_bytes: int,
    tracer=NULL_TRACER,
) -> LocalFS:
    device = Raid0(sim, disks=disks, name=f"{name}.raid")
    cache = PageCache(cache_bytes)
    return LocalFS(sim, device, cache, name=name, tracer=tracer)


# --------------------------------------------------------------------------- #
# GlusterFS (+ optional IMCa)
# --------------------------------------------------------------------------- #
@dataclass
class GlusterTestbed:
    """A built GlusterFS cluster, optionally fronted by IMCa."""

    sim: Simulator
    net: Network
    config: TestbedConfig
    servers: list[GlusterServer]
    mcds: list[MemcachedDaemon]
    clients: list[GlusterClient]
    cmcaches: list[Optional[CMCacheXlator]]
    smcaches: list[Optional[SMCacheXlator]]
    obs: Observability = field(default_factory=Observability)
    #: Named random streams (only when ``config.resilience`` is set).
    streams: Optional[RandomStreams] = None
    #: Live membership + resize controller (``config.elastic`` only).
    membership: Optional["McdMembership"] = None
    elastic: Optional["ElasticController"] = None
    #: Per-client RPC endpoints (fabric + cache-bank), for fast-path
    #: attribution; empty unless the builder collected them.
    client_endpoints: list[Endpoint] = field(default_factory=list)

    @property
    def server(self) -> GlusterServer:
        return self.servers[0]

    def all_mcds(self) -> list[MemcachedDaemon]:
        """Every attached daemon — including ones added or detached
        mid-run — in stable node-id order."""
        if self.membership is not None:
            return [m.daemon for _, m in sorted(self.membership.members.items())]
        return self.mcds

    def arm_faults(self, schedule):
        """Arm a :class:`~repro.faults.schedule.FaultSchedule` against
        this testbed; returns the :class:`FaultInjector`."""
        from repro.faults.injector import FaultInjector

        disks = []
        for s in self.servers:
            disks.extend(getattr(s.fs.device, "members", [s.fs.device]))
        injector = FaultInjector(
            self.sim,
            mcds=self.mcds,
            server_nodes=[s.node for s in self.servers],
            net=self.net,
            disks=disks,
            metrics=self.obs.registry.component("faults"),
            oplog=self.obs.oplog,
            elastic=self.elastic,
        )
        return injector.arm(schedule)

    def mcd_stats(self) -> dict[str, int]:
        """Aggregated engine statistics across the MCD array (untimed)."""
        return merged_counters(
            Counter(dict(mcd.engine.stat_dict())) for mcd in self.all_mcds()
        )

    def tenant_stats(self) -> dict[str, dict[str, int]]:
        """Per-tenant accounting merged across the MCD array (untimed).

        ``{tenant: {hits, misses, evictions, reclaimed, ghost_hits,
        bytes, items, target_bytes, reserved_bytes}}`` plus an
        ``~arbiter`` meta entry; empty when tenancy is off.
        """
        merged: dict[str, Counter] = {}
        for mcd in self.all_mcds():
            for name, stats in mcd.engine.tenant_stats().items():
                merged.setdefault(name, Counter()).merge(Counter(dict(stats)))
        return {name: c.as_dict() for name, c in merged.items()}

    def cm_stats(self) -> dict[str, int]:
        """Aggregated CMCache translator counters across all clients."""
        return merged_counters(cm.metrics if cm else None for cm in self.cmcaches)

    def sm_stats(self) -> dict[str, int]:
        """Aggregated SMCache translator counters across all bricks."""
        return merged_counters(sm.metrics if sm else None for sm in self.smcaches)

    def mcclient_stats(self) -> dict[str, int]:
        """Aggregated MemcacheClient counters (hits/misses/errors and the
        ``replica_*`` fan-out/spread metrics) across every holder."""
        stats = [cm.mc.stats for cm in self.cmcaches if cm is not None]
        stats.extend(sm.mc.stats for sm in self.smcaches if sm is not None)
        return merged_counters(stats)

    def fastpath_stats(self) -> dict[str, int]:
        """Per-tier fast-path attribution (DESIGN §15): how much each
        coalescing layer actually collapsed.  All zeros when off."""
        out = Counter()
        for ep in self.client_endpoints:
            v = ep.stats.values
            out.inc("rpc_batches", v.get("fastpath_batches", 0))
            out.inc("rpc_coalesced", v.get("fastpath_coalesced", 0))
        for s in self.servers:
            gate = s.io_gate
            if gate is not None:
                out.inc("server_admit_batches", gate.batches)
                out.inc("server_admit_coalesced", gate.coalesced)
        for m in self.all_mcds():
            gate = m.cpu_gate
            if gate is not None:
                out.inc("mcd_admit_batches", gate.batches)
                out.inc("mcd_admit_coalesced", gate.coalesced)
        mcc = self.mcclient_stats()
        out.inc("sf_leads", mcc.get("sf_leads", 0))
        out.inc("sf_follows", mcc.get("sf_follows", 0))
        out.inc("sf_redispersed", mcc.get("sf_redispersed", 0))
        cm = self.cm_stats()
        out.inc("stat_sf_leads", cm.get("fastpath_stat_leads", 0))
        out.inc("stat_sf_follows", cm.get("fastpath_stat_follows", 0))
        out.inc("stat_sf_redispersed", cm.get("fastpath_stat_redispersed", 0))
        return out.as_dict()

    def snapshot_metrics(self):
        """Fold live component state into the registry and return it.

        Gauge-like sources outside the registry (MCD engine stats, RPC
        and fabric counters, tracer tier/op histograms) are copied in by
        assignment, so calling this repeatedly is idempotent.
        """
        reg = self.obs.registry
        if self.mcds:
            mcd = reg.component("mcd")
            for k, v in self.mcd_stats().items():
                mcd.counters.values[k] = int(v)
            mcc = reg.component("mcclient")
            for k, v in self.mcclient_stats().items():
                mcc.counters.values[k] = int(v)
            for name, stats in self.tenant_stats().items():
                tc = reg.component(f"tenant:{name}")
                for k, v in stats.items():
                    tc.counters.values[k] = int(v)
        net = reg.component("net")
        for k, v in self.net.stats.as_dict().items():
            net.counters.values[k] = v
        if self.config.imca.fastpath:
            # Only materialised when armed: a default-off run's metrics
            # export must stay byte-identical to the pre-fastpath code.
            fp = reg.component("fastpath")
            for k, v in self.fastpath_stats().items():
                fp.counters.values[k] = int(v)
        tracer = self.obs.tracer
        if tracer.enabled:
            tiers = reg.component("tiers")
            for name, hist in tracer.tier_stats.items():
                tiers.histograms[name] = hist
            ops = reg.component("ops")
            for name, hist in tracer.op_stats.items():
                ops.histograms[name] = hist
            trc = reg.component("tracer")
            trc.counters.values["spans_recorded"] = len(tracer.spans)
            trc.counters.values["spans_dropped"] = tracer.dropped
        oplog = self.obs.oplog
        if oplog is not None:
            olc = reg.component("oplog")
            olc.counters.values["ops_recorded"] = len(oplog.records)
            olc.counters.values["ops_dropped"] = oplog.dropped
            olc.counters.values["orphan_annotations"] = oplog.orphan_annotations
        return reg


def build_gluster_testbed(
    cfg: Optional[TestbedConfig] = None, obs: Optional[Observability] = None
) -> GlusterTestbed:
    """Assemble GlusterFS [+ IMCa when ``cfg.num_mcds > 0``].

    Pass an :class:`Observability` bundle to instrument the testbed;
    the default bundle is fully disabled (null tracer, no sampler).
    """
    cfg = cfg or TestbedConfig()
    obs = obs or Observability()
    sim = Simulator(scheduler=cfg.scheduler)
    obs.bind(sim)
    tracer = obs.tracer
    reg = obs.registry
    net = Network(sim, profile(cfg.transport))
    # Cache-bank traffic may ride a separate transport (§7 future work).
    cache_net = (
        net
        if cfg.mcd_transport is None
        else Network(sim, profile(cfg.mcd_transport), name="cache-net")
    )

    # Failure handling (opt-in; absent = historical fail-fast timing).
    res = cfg.resilience
    streams: Optional[RandomStreams] = None
    mcd_health: Optional[HealthPolicy] = None
    server_retry: Optional[RetryPolicy] = None
    if res is not None:
        streams = RandomStreams(res.seed)
        jitter_rng = streams.stream("rpc.jitter")
        mcd_health = HealthPolicy(
            eject_after=res.eject_after,
            cooldown=res.cooldown,
            purge_on_rejoin=res.purge_on_rejoin,
            retry=RetryPolicy(
                timeout=res.mcd_timeout,
                max_retries=res.mcd_retries,
                backoff=res.backoff,
                backoff_factor=res.backoff_factor,
                max_backoff=res.max_backoff,
                jitter=res.jitter,
                rng=jitter_rng,
            ),
        )
        # No deadline for brick fops: a loaded disk legitimately takes
        # tens of milliseconds, and a dead brick fails fast at the
        # fabric anyway.  The retry loop is what rides out a flap.
        server_retry = RetryPolicy(
            max_retries=res.server_retries,
            backoff=res.backoff,
            backoff_factor=res.backoff_factor,
            max_backoff=res.max_backoff,
            jitter=res.jitter,
            rng=jitter_rng,
        )
        net.loss_rng = streams.stream("net.loss")
        if cache_net is not net:
            cache_net.loss_rng = streams.stream("cachenet.loss")

    # Multi-tenant MCD tier (DESIGN §14): one arbiter per daemon, built
    # fresh on restart too, so arbitration state dies with the process.
    tenancy_factory = None
    if cfg.imca.tenants is not None:
        imca = cfg.imca

        def tenancy_factory(mem_limit: int) -> TenantArbiter:
            return TenantArbiter(
                imca.tenants,
                mem_limit,
                arbitrate=imca.tenant_arbitrate,
                quantum=imca.tenant_quantum,
                rebalance_ops=imca.tenant_rebalance_ops,
                ghost_entries=imca.tenant_ghost_entries,
            )

    # Million-client fast path (DESIGN §15): one knob arms the RPC
    # coalescing window, the get/stat singleflight, and the server/MCD
    # batch-admission gates together; off keeps every path byte-identical.
    fastpath = cfg.imca.fastpath

    # MCD array.
    mcds = [
        MemcachedDaemon(
            sim, cache_net, Node(sim, f"mcd{i}", cores=cfg.cores), cfg.mcd_memory,
            tracer=tracer, tenancy_factory=tenancy_factory, fastpath=fastpath,
        )
        for i in range(cfg.num_mcds)
    ]
    use_imca = bool(mcds)

    # Live membership + resize controller (opt-in; clients built with
    # membership=None keep the frozen-list legacy paths byte-identically).
    membership: Optional[McdMembership] = None
    elastic: Optional[ElasticController] = None
    if cfg.elastic and use_imca:
        membership = McdMembership(mcds)

        def _spawn_mcd(node_id: int) -> MemcachedDaemon:
            return MemcachedDaemon(
                sim, cache_net, Node(sim, f"mcd{node_id}", cores=cfg.cores),
                cfg.mcd_memory, tracer=tracer, tenancy_factory=tenancy_factory,
                fastpath=fastpath,
            )

        elastic = ElasticController(
            sim, membership, cache_net,
            node_factory=_spawn_mcd,
            selector_name=cfg.imca.selector,
            metrics=reg.component("elastic"),
            tracer=tracer,
        )

    # Brick servers (one in the paper's configuration).
    servers: list[GlusterServer] = []
    smcaches: list[Optional[SMCacheXlator]] = []
    for b in range(cfg.num_bricks):
        snode = Node(sim, f"gfs-server{b}" if cfg.num_bricks > 1 else "gfs-server", cores=cfg.cores)
        fs = _make_fs(sim, cfg, f"brick{b}", cfg.raid_disks, cfg.server_cache_bytes, tracer)
        server_xlators: list[Xlator] = []
        smcache: Optional[SMCacheXlator] = None
        if use_imca:
            # rr_seed staggers the read round-robin start per holder so
            # concurrent readers don't stampede the same replica first.
            mc = MemcacheClient(
                Endpoint(cache_net, snode, tracer=tracer, coalesce=fastpath), mcds,
                make_selector(cfg.imca.selector), health=mcd_health,
                replicas=cfg.imca.replicas, rr_seed=b,
                membership=membership, singleflight=fastpath,
            )
            smcache = SMCacheXlator(
                sim, mc, cfg.imca, metrics=reg.component(f"smcache.{snode.name}")
            )
            server_xlators.append(smcache)
        servers.append(
            GlusterServer(
                sim, net, snode, fs, server_xlators,
                io_threads=cfg.io_threads, tracer=tracer, fastpath=fastpath,
            )
        )
        smcaches.append(smcache)

    # Clients.
    clients: list[GlusterClient] = []
    cmcaches: list[Optional[CMCacheXlator]] = []
    client_endpoints: list[Endpoint] = []
    for i in range(cfg.num_clients):
        cnode = Node(sim, f"client{i}", cores=cfg.cores)
        ep = Endpoint(net, cnode, tracer=tracer, coalesce=fastpath)
        protocols = [ClientProtocol(ep, server, retry=server_retry) for server in servers]
        bottom: Xlator = protocols[0] if len(protocols) == 1 else DistributeXlator(protocols)
        stack: list[Xlator] = []
        cmcache: Optional[CMCacheXlator] = None
        if use_imca:
            mc_ep = (
                ep
                if cache_net is net
                else Endpoint(cache_net, cnode, tracer=tracer, coalesce=fastpath)
            )
            mc = MemcacheClient(
                mc_ep, mcds, make_selector(cfg.imca.selector), health=mcd_health,
                replicas=cfg.imca.replicas, rr_seed=cfg.num_bricks + i,
                membership=membership, singleflight=fastpath,
            )
            cmcache = CMCacheXlator(
                mc, cfg.imca, metrics=reg.component(f"cmcache.{cnode.name}"),
                sim=sim,
            )
            stack.append(cmcache)
        stack.append(bottom)
        clients.append(GlusterClient(sim, cnode, Xlator.build_stack(stack), tracer=tracer))
        cmcaches.append(cmcache)
        client_endpoints.append(ep)
        if cmcache is not None and cmcache.mc.endpoint is not ep:
            client_endpoints.append(cmcache.mc.endpoint)

    tb = GlusterTestbed(
        sim, net, cfg, servers, mcds, clients, cmcaches, smcaches, obs,
        streams=streams, membership=membership, elastic=elastic,
        client_endpoints=client_endpoints,
    )
    if obs.sample_interval:
        obs.samplers.append(
            Sampler(sim, reg.component("samples"), gluster_probes(tb), obs.sample_interval)
        )
    return tb


# --------------------------------------------------------------------------- #
# Lustre
# --------------------------------------------------------------------------- #
@dataclass
class LustreTestbed:
    """A built Lustre cluster (MDS + OSTs + clients)."""

    sim: Simulator
    net: Network
    config: TestbedConfig
    mds: MetadataServer
    osts: list[ObjectServer]
    clients: list[LustreClient]
    obs: Observability = field(default_factory=Observability)


def build_lustre_testbed(
    cfg: Optional[TestbedConfig] = None, obs: Optional[Observability] = None
) -> LustreTestbed:
    cfg = cfg or TestbedConfig()
    obs = obs or Observability()
    sim = Simulator(scheduler=cfg.scheduler)
    obs.bind(sim)
    tracer = obs.tracer
    net = Network(sim, profile(cfg.transport))

    layout = StripeLayout(count=cfg.num_data_servers, stripe_size=cfg.stripe_size)
    mds_node = Node(sim, "mds", cores=cfg.cores)
    mds_fs = _make_fs(sim, cfg, "mdt", disks=2, cache_bytes=2 * GiB, tracer=tracer)
    mds = MetadataServer(sim, net, mds_node, mds_fs, layout)

    osts = []
    for i in range(cfg.num_data_servers):
        onode = Node(sim, f"ost{i}", cores=cfg.cores)
        ofs = _make_fs(
            sim, cfg, f"ost{i}", disks=cfg.ost_disks,
            cache_bytes=cfg.ost_cache_bytes, tracer=tracer,
        )
        osts.append(ObjectServer(sim, net, onode, ofs, index=i))

    clients = []
    for i in range(cfg.num_clients):
        cnode = Node(sim, f"client{i}", cores=cfg.cores)
        ep = Endpoint(net, cnode, tracer=tracer)
        clients.append(
            LustreClient(sim, cnode, ep, mds, osts, cache_bytes=cfg.lustre_client_cache)
        )
    return LustreTestbed(sim, net, cfg, mds, osts, clients, obs)


# --------------------------------------------------------------------------- #
# NFS
# --------------------------------------------------------------------------- #
@dataclass
class NFSTestbed:
    """A built single-server NFS cluster."""

    sim: Simulator
    net: Network
    config: TestbedConfig
    server: NfsServer
    clients: list[NfsClient]
    obs: Observability = field(default_factory=Observability)


def build_nfs_testbed(
    cfg: Optional[TestbedConfig] = None, obs: Optional[Observability] = None
) -> NFSTestbed:
    cfg = cfg or TestbedConfig()
    obs = obs or Observability()
    sim = Simulator(scheduler=cfg.scheduler)
    obs.bind(sim)
    tracer = obs.tracer
    net = Network(sim, profile(cfg.transport))
    snode = Node(sim, "nfs-server", cores=cfg.cores)
    fs = _make_fs(sim, cfg, "export", cfg.raid_disks, cfg.server_cache_bytes, tracer)
    server = NfsServer(sim, net, snode, fs)
    clients = []
    for i in range(cfg.num_clients):
        cnode = Node(sim, f"client{i}", cores=cfg.cores)
        ep = Endpoint(net, cnode, tracer=tracer)
        clients.append(NfsClient(sim, cnode, ep, server))
    return NFSTestbed(sim, net, cfg, server, clients, obs)


def scaled(cfg: TestbedConfig, **overrides) -> TestbedConfig:
    """Convenience: copy a config with overrides (used by sweeps)."""
    return replace(cfg, **overrides)
