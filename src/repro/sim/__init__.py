"""A from-scratch deterministic discrete-event simulation engine.

Processes are generators yielding :class:`~repro.sim.events.Event`
objects; the :class:`~repro.sim.core.Simulator` owns the clock and the
event heap.  Resources, stores and sync primitives cover the queueing
patterns needed to model clusters: serialised devices, mailboxes,
barriers.
"""

from repro.sim.calendar import CalendarQueue
from repro.sim.core import SCHEDULERS, Simulator, resolve_scheduler
from repro.sim.errors import EmptySchedule, Interrupt, SimulationError, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    PooledTimeout,
    Timeout,
)
from repro.sim.monitor import Metrics, Tracer
from repro.sim.process import Process, ProcessGenerator
from repro.sim.rand import RandomStreams
from repro.sim.resources import Container, PriorityResource, Request, Resource
from repro.sim.station import FifoStation
from repro.sim.store import FilterStore, Store
from repro.sim.sync import Barrier, CountdownLatch, Lock

__all__ = [
    "Simulator",
    "CalendarQueue",
    "SCHEDULERS",
    "resolve_scheduler",
    "Event",
    "Timeout",
    "PooledTimeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Process",
    "ProcessGenerator",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "EmptySchedule",
    "Resource",
    "PriorityResource",
    "Request",
    "Container",
    "FifoStation",
    "Store",
    "FilterStore",
    "Barrier",
    "Lock",
    "CountdownLatch",
    "Metrics",
    "Tracer",
    "RandomStreams",
]
