"""Message-passing stores (mailboxes / queues) for sim processes.

:class:`Store` is an unbounded-or-bounded FIFO of arbitrary items;
``put`` and ``get`` return events.  :class:`FilterStore` lets getters
wait for items matching a predicate (used e.g. to match RPC replies to
request ids).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Store:
    """FIFO item store with blocking put (when bounded) and get."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        ev = Event(self.sim)
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        ev = Event(self.sim)
        self._getters.append(ev)
        self._settle()
        return ev

    # -- internals -------------------------------------------------------
    def _admit(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            item, ev = self._putters.popleft()
            self.items.append(item)
            ev.succeed(item)

    def _serve(self) -> None:
        while self._getters and self.items:
            ev = self._getters.popleft()
            ev.succeed(self.items.popleft())

    def _settle(self) -> None:
        # Admit then serve, repeatedly, until stable: serving frees
        # capacity which may admit further putters.
        while True:
            before = (len(self.items), len(self._putters), len(self._getters))
            self._admit()
            self._serve()
            if before == (len(self.items), len(self._putters), len(self._getters)):
                break


class FilterStore(Store):
    """Store whose getters can demand items satisfying a predicate."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        super().__init__(sim, capacity)
        self._filters: dict[Event, Callable[[Any], bool]] = {}

    def get(self, filter: Callable[[Any], bool] | None = None) -> Event:  # noqa: A002
        ev = Event(self.sim)
        self._filters[ev] = filter or (lambda item: True)
        self._getters.append(ev)
        self._settle()
        return ev

    def _serve(self) -> None:
        served = True
        while served:
            served = False
            for ev in list(self._getters):
                pred = self._filters[ev]
                for idx, item in enumerate(self.items):
                    if pred(item):
                        del self.items[idx]
                        self._getters.remove(ev)
                        del self._filters[ev]
                        ev.succeed(item)
                        served = True
                        break
