"""Analytic FIFO queueing stations.

A :class:`FifoStation` models a work-conserving FIFO service centre with
``servers`` identical servers (a NIC serialiser, a disk arm, a pool of
service threads).  Because every job's service demand is known when it
arrives, the start/completion times can be computed *analytically* at
reservation time — one heap event per visit instead of the
request/hold/release triple of a :class:`~repro.sim.resources.Resource`.
This is the standard flow-level optimisation that keeps paper-scale
workloads (millions of operations) tractable in pure Python.

Semantics: reservations are served in reservation order.  When two
messages are committed in the same simulation instant this matches FIFO
exactly; reservations made "from the future" (pipelined hops, see
:meth:`FifoStation.reserve`) may order slightly differently from a true
arrival-time sort, which perturbs individual waits but conserves total
busy time — aggregate latency/throughput statistics are unaffected.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

from repro.sim.events import Event, NORMAL, PooledTimeout, Timeout
from repro.util.stats import OnlineStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class FifoStation:
    """A c-server FIFO station with analytic reservation."""

    __slots__ = (
        "sim",
        "name",
        "servers",
        "_free",
        "_latest_free",
        "busy_time",
        "jobs",
        "wait_stats",
        "_track_waits",
        "_created_at",
        "_cal_push",
    )

    def __init__(self, sim: "Simulator", servers: int = 1, name: str = "") -> None:
        if servers < 1:
            raise ValueError("servers must be >= 1")
        self.sim = sim
        self.name = name
        self.servers = servers
        # Scheduler-backend insert for the fused fast path below: None
        # means "push straight onto sim._heap"; otherwise the calendar
        # queue's bound push.  The backend is fixed at Simulator
        # construction, so caching here is safe.
        cal = getattr(sim, "_calendar", None)
        self._cal_push = None if cal is None else cal.push
        # Earliest-free-server heap; server assignment by earliest free
        # time is exact for FIFO multi-server queues.
        self._free = [0.0] * servers
        #: Latest free time across all servers, maintained incrementally:
        #: every reservation's end is >= the popped minimum, so the max
        #: never decreases and ``max(latest, end)`` is exact.
        self._latest_free = 0.0
        self.busy_time = 0.0
        self.jobs = 0
        self.wait_stats = OnlineStats()
        # Per-visit wait statistics are skipped when the owning
        # simulator is unobserved (no tracer/sampler attached); bare
        # simulators default to tracking.
        self._track_waits = getattr(sim, "track_station_waits", True)
        self._created_at = sim.now

    def reserve(self, service: float, arrival: float | None = None) -> tuple[float, float]:
        """Reserve one server for *service* seconds.

        Returns ``(start, end)``.  *arrival* defaults to the current
        simulation time; hops chained through several stations pass the
        upstream completion time instead.
        """
        if service < 0:
            raise ValueError(f"negative service time: {service}")
        if arrival is None:
            arrival = self.sim._now
        free_heap = self._free
        if self.servers == 1:
            # Single-server fast path: the one-entry "heap" is a plain cell.
            free = free_heap[0]
            start = free if free > arrival else arrival
            end = start + service
            free_heap[0] = end
        else:
            free = heappop(free_heap)
            start = free if free > arrival else arrival
            end = start + service
            heappush(free_heap, end)
        if end > self._latest_free:
            self._latest_free = end
        self.busy_time += service
        self.jobs += 1
        if self._track_waits:
            self.wait_stats.add(start - arrival)
        return start, end

    def run(self, service: float) -> Timeout:
        """Reserve and return a timeout that fires at completion.

        ``yield station.run(cost)`` is the one-event replacement for the
        request/timeout/release pattern.  The returned timeout is drawn
        from the simulator's recycling pool: yield it immediately and do
        not retain it past its firing.

        This is :meth:`reserve` plus :meth:`Simulator.pooled_timeout`
        fused into one call — the kernel's single hottest entry point.
        """
        if service < 0:
            raise ValueError(f"negative service time: {service}")
        sim = self.sim
        arrival = sim._now
        free_heap = self._free
        if self.servers == 1:
            free = free_heap[0]
            start = free if free > arrival else arrival
            end = start + service
            free_heap[0] = end
        else:
            free = heappop(free_heap)
            start = free if free > arrival else arrival
            end = start + service
            heappush(free_heap, end)
        if end > self._latest_free:
            self._latest_free = end
        self.busy_time += service
        self.jobs += 1
        if self._track_waits:
            self.wait_stats.add(start - arrival)
        # Inlined sim.pooled_timeout(end - arrival); `arrival + delay`
        # (not `end`) preserves the seed's float arithmetic exactly.
        delay = end - arrival
        pool = sim._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev.delay = delay
            sim._seq += 1
            entry = (arrival + delay, NORMAL, sim._seq, ev)
            push = self._cal_push
            if push is None:
                heappush(sim._heap, entry)
            else:
                push(entry)
            return ev
        return PooledTimeout(sim, delay)

    def reserve_batch(
        self, services, arrival: float | None = None
    ) -> tuple[float, float]:
        """Admit a burst of visits in one vectored reservation.

        Returns ``(first_start, last_end)``.  The burst is served in
        sequence order, back to back: on a single-server station the
        whole batch collapses to **one** aggregate reservation of
        ``sum(services)`` seconds (one float add per visit avoided); on
        a multi-server station each visit still walks the earliest-free
        heap so server assignment stays exact, but no per-visit event is
        scheduled either way.

        Per-visit wait statistics degenerate to "wait of the burst":
        every visit is recorded as having waited from *arrival* to the
        burst's first start.  Aggregate busy time and job counts are
        exact.
        """
        if arrival is None:
            arrival = self.sim._now
        n = len(services)
        if n == 0:
            return arrival, arrival
        if self.servers == 1:
            if min(services) < 0:
                raise ValueError(f"negative service time in batch: {services}")
            total = sum(services)
            free = self._free[0]
            start = free if free > arrival else arrival
            end = start + total
            self._free[0] = end
            first_start = start
        else:
            free_heap = self._free
            first_start = None
            total = 0.0
            end = arrival
            for service in services:
                if service < 0:
                    raise ValueError(f"negative service time in batch: {services}")
                free = heappop(free_heap)
                start = free if free > arrival else arrival
                visit_end = start + service
                heappush(free_heap, visit_end)
                total += service
                if first_start is None or start < first_start:
                    first_start = start
                if visit_end > end:
                    end = visit_end
        if end > self._latest_free:
            self._latest_free = end
        self.busy_time += total
        self.jobs += n
        if self._track_waits:
            wait = first_start - arrival
            for _ in range(n):
                self.wait_stats.add(wait)
        return first_start, end

    def run_batch(self, services) -> Timeout:
        """Reserve a burst of visits and return **one** timeout that
        fires when the last visit completes.

        ``yield station.run_batch(costs)`` retires the whole burst with
        a single schedule entry and a single process wakeup, instead of
        the per-visit timeout of ``for c in costs: yield
        station.run(c)``.  The returned timeout is drawn from the
        simulator's recycling pool: yield it immediately and do not
        retain it past its firing.
        """
        sim = self.sim
        arrival = sim._now
        _, end = self.reserve_batch(services, arrival)
        delay = end - arrival
        pool = sim._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev.delay = delay
            sim._seq += 1
            entry = (arrival + delay, NORMAL, sim._seq, ev)
            push = self._cal_push
            if push is None:
                heappush(sim._heap, entry)
            else:
                push(entry)
            return ev
        return PooledTimeout(sim, delay)

    def next_free(self) -> float:
        """Earliest time a server becomes available."""
        # The earliest-free heap invariant keeps the minimum at index 0.
        return self._free[0]

    def backlog(self) -> float:
        """Seconds until *all* servers are free (queue depth proxy)."""
        remaining = self._latest_free - self.sim._now
        return remaining if remaining > 0.0 else 0.0

    def utilization(self, since: float | None = None) -> float:
        """Busy fraction of total server-time since *since* (creation
        by default).  May exceed 1.0 transiently because reservations
        extend into the future."""
        if since is None:
            since = self._created_at
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.servers)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FifoStation {self.name or id(self):} servers={self.servers} "
            f"jobs={self.jobs} backlog={self.backlog():.6f}s>"
        )


class BatchGate:
    """Same-instant batch admission for a :class:`FifoStation`
    (DESIGN §15).

    Callers that reach the gate within one sim instant are retired as a
    single :meth:`FifoStation.run_batch` burst instead of one
    :meth:`FifoStation.run` timeout each: the first caller opens a
    window, parks on a zero-delay timeout, and — once every other
    same-instant caller has appended its cost — charges the whole burst
    in one vectored reservation with one wakeup, then releases the
    riders.  Aggregate busy time and job counts on the station are
    identical to the scalar chain; riders complete at the burst's end
    instead of their own visit's end (the batch-coalescing timestamp
    semantics of ``run_batch``).

    A window that closes with a single caller charges a scalar
    :meth:`FifoStation.run`, so uncontended traffic is unchanged.
    """

    __slots__ = ("station", "_pending", "batches", "coalesced", "solo")

    def __init__(self, station: FifoStation) -> None:
        self.station = station
        self._pending: tuple[list, list] | None = None
        #: Multi-caller windows flushed / riders coalesced / 1-caller
        #: windows — the gate's contribution to ``fastpath_*`` metrics.
        self.batches = 0
        self.coalesced = 0
        self.solo = 0

    def admit(self, cost: float):
        """``yield from gate.admit(cost)`` — returns at the caller's
        admission-burst completion."""
        sim = self.station.sim
        pending = self._pending
        if pending is not None:
            # Window already open: ride the leader's burst.
            self.coalesced += 1
            ev = Event(sim)
            pending[0].append(cost)
            pending[1].append(ev)
            yield ev
            return
        costs = [cost]
        waiters: list[Event] = []
        self._pending = (costs, waiters)
        # Hold the window open for the remainder of this sim instant.
        yield sim.pooled_timeout(0.0)
        self._pending = None
        if not waiters:
            self.solo += 1
            yield self.station.run(cost)
            return
        self.batches += 1
        yield self.station.run_batch(costs)
        for ev in waiters:
            ev.succeed()
