"""Analytic FIFO queueing stations.

A :class:`FifoStation` models a work-conserving FIFO service centre with
``servers`` identical servers (a NIC serialiser, a disk arm, a pool of
service threads).  Because every job's service demand is known when it
arrives, the start/completion times can be computed *analytically* at
reservation time — one heap event per visit instead of the
request/hold/release triple of a :class:`~repro.sim.resources.Resource`.
This is the standard flow-level optimisation that keeps paper-scale
workloads (millions of operations) tractable in pure Python.

Semantics: reservations are served in reservation order.  When two
messages are committed in the same simulation instant this matches FIFO
exactly; reservations made "from the future" (pipelined hops, see
:meth:`FifoStation.reserve`) may order slightly differently from a true
arrival-time sort, which perturbs individual waits but conserves total
busy time — aggregate latency/throughput statistics are unaffected.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.sim.events import Timeout
from repro.util.stats import OnlineStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class FifoStation:
    """A c-server FIFO station with analytic reservation."""

    __slots__ = (
        "sim",
        "name",
        "servers",
        "_free",
        "busy_time",
        "jobs",
        "wait_stats",
        "_created_at",
    )

    def __init__(self, sim: "Simulator", servers: int = 1, name: str = "") -> None:
        if servers < 1:
            raise ValueError("servers must be >= 1")
        self.sim = sim
        self.name = name
        self.servers = servers
        # Earliest-free-server heap; server assignment by earliest free
        # time is exact for FIFO multi-server queues.
        self._free = [0.0] * servers
        self.busy_time = 0.0
        self.jobs = 0
        self.wait_stats = OnlineStats()
        self._created_at = sim.now

    def reserve(self, service: float, arrival: float | None = None) -> tuple[float, float]:
        """Reserve one server for *service* seconds.

        Returns ``(start, end)``.  *arrival* defaults to the current
        simulation time; hops chained through several stations pass the
        upstream completion time instead.
        """
        if service < 0:
            raise ValueError(f"negative service time: {service}")
        if arrival is None:
            arrival = self.sim.now
        free = heapq.heappop(self._free)
        start = free if free > arrival else arrival
        end = start + service
        heapq.heappush(self._free, end)
        self.busy_time += service
        self.jobs += 1
        self.wait_stats.add(start - arrival)
        return start, end

    def run(self, service: float) -> Timeout:
        """Reserve and return a timeout that fires at completion.

        ``yield station.run(cost)`` is the one-event replacement for the
        request/timeout/release pattern.
        """
        _, end = self.reserve(service)
        return Timeout(self.sim, end - self.sim.now)

    def next_free(self) -> float:
        """Earliest time a server becomes available."""
        return min(self._free)

    def backlog(self) -> float:
        """Seconds until *all* servers are free (queue depth proxy)."""
        latest = max(self._free)
        return max(0.0, latest - self.sim.now)

    def utilization(self, since: float | None = None) -> float:
        """Busy fraction of total server-time since *since* (creation
        by default).  May exceed 1.0 transiently because reservations
        extend into the future."""
        if since is None:
            since = self._created_at
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.servers)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FifoStation {self.name or id(self):} servers={self.servers} "
            f"jobs={self.jobs} backlog={self.backlog():.6f}s>"
        )
