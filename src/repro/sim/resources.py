"""Shared-resource primitives: Resource, PriorityResource, Container.

A :class:`Resource` models a server with fixed capacity (a disk arm, a
CPU, a NIC serialiser): processes ``yield resource.request()`` to acquire
a slot and call ``resource.release(req)`` (or use the request as a
context manager) to free it.  Waiters are granted FIFO, or by priority
for :class:`PriorityResource`.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

from repro.sim.events import Event
from repro.util.stats import OnlineStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Request(Event):
    """Acquisition event for a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: object) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A capacity-limited resource with a FIFO wait queue.

    Tracks queue-length and utilisation statistics so experiments can
    report server contention directly.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self.queue: list[Request] = []
        self.wait_stats = OnlineStats()
        self._busy_time = 0.0
        self._last_change = sim.now
        self._request_times: dict[int, float] = {}

    # -- accounting -----------------------------------------------------
    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += len(self.users) * (now - self._last_change)
        self._last_change = now

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity in use since *since*."""
        self._account()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (elapsed * self.capacity)

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    # -- acquire / release ----------------------------------------------
    def request(self, priority: float = 0.0) -> Request:
        req = Request(self, priority)
        self._request_times[id(req)] = self.sim.now
        if len(self.users) < self.capacity:
            self._grant(req)
        else:
            self._enqueue(req)
        return req

    def _enqueue(self, req: Request) -> None:
        self.queue.append(req)

    def _dequeue(self) -> Request | None:
        return self.queue.pop(0) if self.queue else None

    def _grant(self, req: Request) -> None:
        self._account()
        self.users.append(req)
        started = self._request_times.pop(id(req), self.sim.now)
        self.wait_stats.add(self.sim.now - started)
        req.succeed(req)

    def release(self, req: Request) -> None:
        """Free a held slot and grant the next waiter, if any."""
        if req not in self.users:
            raise RuntimeError("release() of a request that holds no slot")
        self._account()
        self.users.remove(req)
        nxt = self._dequeue()
        if nxt is not None:
            self._grant(nxt)

    def _cancel(self, req: Request) -> None:
        if req in self.queue:
            self.queue.remove(req)
            self._request_times.pop(id(req), None)


class PriorityResource(Resource):
    """Resource whose waiters are granted lowest-priority-value first."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        super().__init__(sim, capacity, name)
        self._pq: list[tuple[float, int, Request]] = []
        self._pq_seq = 0

    def _enqueue(self, req: Request) -> None:
        self._pq_seq += 1
        heapq.heappush(self._pq, (req.priority, self._pq_seq, req))
        self.queue.append(req)

    def _dequeue(self) -> Request | None:
        while self._pq:
            _, _, req = heapq.heappop(self._pq)
            if req in self.queue:
                self.queue.remove(req)
                return req
        return None

    def _cancel(self, req: Request) -> None:
        if req in self.queue:
            self.queue.remove(req)
            self._request_times.pop(id(req), None)


class Container:
    """A homogeneous bulk store (level between 0 and capacity).

    ``put``/``get`` block (as events) until the operation can complete.
    Used for modelling byte budgets and credit schemes.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.sim)
        self._putters.append((amount, ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.sim)
        self._getters.append((amount, ev))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    ev.succeed(amount)
                    progress = True
            if self._getters:
                amount, ev = self._getters[0]
                if self._level >= amount:
                    self._level -= amount
                    self._getters.pop(0)
                    ev.succeed(amount)
                    progress = True
