"""Calendar-queue scheduler backend for the DES kernel.

The default :class:`~repro.sim.core.Simulator` backend is a single
binary heap of ``(time, priority, seq, event)`` entries.  Every push
and pop costs ``O(log n)`` tuple comparisons, and at the million-client
scale the heap holds one pending timeout per client, so ``n`` is large
exactly when the event rate is highest.

:class:`CalendarQueue` exploits the structure of that traffic: the
dominant events are *short-delay* timeouts (per-packet NIC
serialisation, RPC timers) landing a few microseconds ahead of the
clock.  It hashes each entry by integer tick ``int(time / width)`` into
a sparse dict of unsorted buckets and drains one bucket at a time
through a small per-bucket heap:

* **push** into a future bucket is an ``O(1)`` list append (plus one
  small int-heap push the first time a tick is seen);
* **pop** heapifies one bucket (``O(b)`` for bucket occupancy ``b``)
  and then pays ``O(log b)`` per event instead of ``O(log n)``;
* **far-future and overflow entries spill to a plain heap** and migrate
  into the wheel lazily as the horizon advances, so the wheel only ever
  indexes the near future and the tick heap stays small;
* the bucket **width auto-shrinks** when a drained bucket turns out
  overcrowded, so no workload-specific tuning is required.

Because entries are the engine's exact ``(time, priority, seq, event)``
tuples and ``seq`` is unique, the pop order is a strict total order —
identical, event for event, to the binary heap's.  A run on this
backend is therefore *byte-identical* to a run on the heap backend;
only the wall-clock cost changes.

All state mutation happens inside ``push``/``pop``/``peek_time``; there
are no background threads or timers, so determinism is structural.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

#: Default bucket width in seconds.  One microsecond matches the
#: engine's typical service quantum (NIC serialisation of a small
#: message, a CPU slice); the auto-resize below corrects it downward
#: for denser schedules.
DEFAULT_WIDTH = 1e-6

#: Horizon span in ticks: entries further than this many ticks past the
#: drain position spill to the overflow heap.  Sparse dict buckets make
#: empty ticks free, so the span can be generous.
DEFAULT_SPAN = 1 << 16

#: A drained bucket larger than this triggers a width shrink (provided
#: its entries are not all at one timestamp, which no width can split).
RESIZE_THRESHOLD = 48

#: Occupancy the resize aims for.
TARGET_OCCUPANCY = 8

#: Width floor: below ~1e-12 s the tick indices of microsecond-scale
#: schedules exceed 2**63 after ~a simulated week; nothing in the
#: engine needs finer discrimination.
MIN_WIDTH = 1e-12


class CalendarQueue:
    """A bucketed timing wheel with a spill heap, total-order exact."""

    __slots__ = (
        "_width",
        "_inv_width",
        "_span",
        "_buckets",
        "_tick_heap",
        "_cur",
        "_cur_tick",
        "_horizon_tick",
        "_spill",
        "_len",
        "_resize_backoff",
        "resizes",
    )

    def __init__(self, width: float = DEFAULT_WIDTH, span: int = DEFAULT_SPAN) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be > 0: {width}")
        if span < 1:
            raise ValueError(f"horizon span must be >= 1 tick: {span}")
        self._width = float(width)
        self._inv_width = 1.0 / self._width
        self._span = int(span)
        #: tick -> unsorted list of entries (future ticks only).
        self._buckets: dict[int, list] = {}
        #: Min-heap of ticks with a live bucket (each tick pushed once,
        #: when its bucket is created).
        self._tick_heap: list[int] = []
        #: The bucket currently being drained, as a min-heap.
        self._cur: list = []
        self._cur_tick = 0
        self._horizon_tick = self._span
        #: Overflow heap for entries at or past the horizon.
        self._spill: list = []
        self._len = 0
        #: Drains to skip the resize check for, set after a declined
        #: shrink: a schedule whose crowding is same-instant ties keeps
        #: tripping the threshold, and the distinct-timestamp scan on
        #: every crowded drain costs more than the drain itself.
        self._resize_backoff = 0
        #: Diagnostic: number of width shrinks performed.
        self.resizes = 0

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    @property
    def width(self) -> float:
        return self._width

    @property
    def spilled(self) -> int:
        """Entries currently parked in the overflow heap."""
        return len(self._spill)

    # -- core operations --------------------------------------------------
    def push(self, entry) -> None:
        """Insert one ``(time, priority, seq, event)`` entry.

        The engine only schedules at or after the current clock, so a
        new entry's tick is never behind the drain position.
        """
        tick = int(entry[0] * self._inv_width)
        if tick <= self._cur_tick:
            # Lands in the bucket being drained (callbacks scheduling
            # zero/short delays): merge into the live mini-heap.
            heappush(self._cur, entry)
        elif tick < self._horizon_tick:
            bucket = self._buckets.get(tick)
            if bucket is None:
                self._buckets[tick] = [entry]
                heappush(self._tick_heap, tick)
            else:
                bucket.append(entry)
        else:
            heappush(self._spill, entry)
        self._len += 1

    def pop(self):
        """Remove and return the least entry; IndexError when empty."""
        cur = self._cur
        if not cur:
            self._load_next()  # raises IndexError when truly empty
            cur = self._cur
        self._len -= 1
        return heappop(cur)

    def peek_time(self) -> float:
        """Time of the least entry (``inf`` when empty).

        May internally promote the next bucket to the drain position,
        which is order-neutral.
        """
        if not self._cur:
            try:
                self._load_next()
            except IndexError:
                return float("inf")
        return self._cur[0][0]

    # -- internals --------------------------------------------------------
    def _load_next(self) -> None:
        """Advance the drain position to the next non-empty bucket."""
        tick_heap = self._tick_heap
        spill = self._spill
        while True:
            if not tick_heap and not spill:
                raise IndexError("calendar queue is empty")
            if tick_heap:
                tick = tick_heap[0]
                # The wheel only holds entries below the horizon, so a
                # spilled entry can only come first when its tick does.
                if spill and int(spill[0][0] * self._inv_width) < tick:
                    self._migrate(int(spill[0][0] * self._inv_width))
                    continue
                heappop(tick_heap)
                bucket = self._buckets.pop(tick)
            else:
                tick = int(spill[0][0] * self._inv_width)
                self._migrate(tick)
                continue
            if len(bucket) > RESIZE_THRESHOLD:
                if self._resize_backoff:
                    self._resize_backoff -= 1
                elif self._shrink(bucket):
                    # _shrink rebuilt the wheel: the local alias points
                    # at the discarded tick heap; rebind before looping.
                    tick_heap = self._tick_heap
                    continue
                else:
                    self._resize_backoff = 32
            self._cur = bucket
            self._cur_tick = tick
            new_horizon = tick + self._span
            if new_horizon > self._horizon_tick:
                self._horizon_tick = new_horizon
                self._migrate_spill()
            heapify(bucket)
            return

    def _migrate(self, base_tick: int) -> None:
        """Jump the horizon so the spill head at *base_tick* fits the
        wheel, then pull spilled entries in."""
        self._horizon_tick = max(self._horizon_tick, base_tick + self._span)
        self._migrate_spill()

    def _migrate_spill(self) -> None:
        """Move spilled entries now inside the horizon into buckets."""
        spill = self._spill
        buckets = self._buckets
        horizon_time = self._horizon_tick * self._width
        inv_width = self._inv_width
        while spill and spill[0][0] < horizon_time:
            entry = heappop(spill)
            tick = int(entry[0] * inv_width)
            bucket = buckets.get(tick)
            if bucket is None:
                buckets[tick] = [entry]
                heappush(self._tick_heap, tick)
            else:
                bucket.append(entry)

    def _shrink(self, bucket: list) -> bool:
        """Shrink the bucket width so *bucket*'s entries spread to
        ~:data:`TARGET_OCCUPANCY` per tick, then re-insert everything.

        Returns False (no resize) when the entries cannot be split:
        all at one timestamp, or the width floor is reached.
        """
        distinct = len({e[0] for e in bucket})
        if distinct <= TARGET_OCCUPANCY or self._width <= MIN_WIDTH:
            # The crowd is mostly same-instant ties, which no width can
            # split — leave the width alone.
            return False
        lo = min(e[0] for e in bucket)
        # Width that would hold ~TARGET_OCCUPANCY entries per tick if
        # the *wheel's* population spread evenly over its occupied tick
        # range.  Two wrong estimators to avoid: the triggering bucket's
        # own spread is dominated by same-instant bursts and float-ulp
        # clusters (sizing from it cascades the width to the floor and
        # spills the whole schedule), while a whole-schedule high-water
        # mark lets one far-future spilled outlier inflate the spread
        # and veto adaptation forever.
        tick_heap = self._tick_heap
        if tick_heap:
            hi = (max(tick_heap) + 1) * self._width
        else:
            hi = max(e[0] for e in bucket)
        wheel_len = self._len - len(self._spill)  # _cur is empty here
        spread = hi - lo
        if spread <= 0.0 or wheel_len <= 0:
            return False
        new_width = max(spread * TARGET_OCCUPANCY / wheel_len, MIN_WIDTH)
        if new_width >= self._width:
            # The schedule-wide density says the width is already right
            # (the crowding is a local cluster): shrinking further would
            # just thrash rebuilds on every crowded drain.
            return False
        pending = list(bucket)
        for b in self._buckets.values():
            pending.extend(b)
        pending.extend(self._cur)
        self._width = new_width
        self._inv_width = 1.0 / new_width
        self._buckets = {}
        self._tick_heap = []
        self._cur = []
        # Anchor the drain position just below the earliest pending
        # entry so re-inserted entries all land ahead of it.
        base = int(lo * self._inv_width) - 1
        self._cur_tick = base
        self._horizon_tick = base + self._span
        self.resizes += 1
        n = self._len
        for entry in pending:
            self.push(entry)
            self._len -= 1  # push() re-counts; keep _len invariant
        self._len = n
        self._migrate_spill()
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CalendarQueue n={self._len} width={self._width:g} "
            f"buckets={len(self._buckets)} spill={len(self._spill)} "
            f"resizes={self.resizes}>"
        )
