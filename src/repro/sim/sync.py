"""Synchronisation primitives built on events.

The paper's multi-client benchmarks are barrier-structured: "the
latency test starts with a barrier among all the processes ... each
record size is separated by a barrier" (§5.4).  :class:`Barrier`
reproduces that structure; :class:`Lock` and :class:`CountdownLatch`
serve the Lustre lock-manager and harness plumbing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Barrier:
    """A reusable (cyclic) barrier for a fixed number of parties."""

    def __init__(self, sim: "Simulator", parties: int) -> None:
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.sim = sim
        self.parties = parties
        self._waiting = 0
        self._event = Event(sim)
        self.generation = 0

    def wait(self) -> Event:
        """Arrive at the barrier; the returned event fires when all
        parties have arrived.  The event value is the generation index.
        """
        self._waiting += 1
        ev = self._event
        if self._waiting == self.parties:
            self._waiting = 0
            self._event = Event(self.sim)
            ev.succeed(self.generation)
            self.generation += 1
        return ev


class Lock:
    """A simple FIFO mutex: ``yield lock.acquire()`` ... ``lock.release()``."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._locked = False
        self._waiters: list[Event] = []

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if not self._locked:
            self._locked = True
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError("release of an unlocked Lock")
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self._locked = False


class CountdownLatch:
    """Fires its event once :meth:`count_down` has been called N times."""

    def __init__(self, sim: "Simulator", count: int) -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        self.sim = sim
        self._count = count
        self.event = Event(sim)
        if count == 0:
            self.event.succeed(0)

    @property
    def remaining(self) -> int:
        return self._count

    def count_down(self, by: int = 1) -> None:
        if self._count <= 0:
            raise RuntimeError("latch already open")
        self._count -= by
        if self._count <= 0:
            self.event.succeed(0)
