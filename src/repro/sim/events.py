"""Core event types for the discrete-event engine.

The engine follows the classic event/process pattern (as popularised by
SimPy): an :class:`Event` is a one-shot occurrence with a list of
callbacks; a process (see :mod:`repro.sim.process`) is a generator that
``yield``\\ s events and is resumed when they fire.

Every event moves through three states:

* *pending*  — created, not yet triggered; ``callbacks`` is a list.
* *triggered* — has a value and is scheduled on the event heap.
* *processed* — callbacks have run; ``callbacks`` is ``None``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

#: Sentinel for "no value yet".
PENDING = object()

#: Scheduling priorities: urgent events at the same timestamp run first.
#: STOP outranks even URGENT — it is reserved for the engine's own
#: run-until markers, which must fire before any user event at the
#: same instant.
STOP = -1
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence at a point in simulated time."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is PENDING:
            raise AttributeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise AttributeError("event not yet triggered")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive *exception*."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy state from an already-triggered *event* (chaining)."""
        self._ok = event._ok
        self._value = event._value
        self.sim._schedule(self, NORMAL)

    def defused(self) -> None:
        """Mark a failed event as handled so the engine won't re-raise."""
        self._defused = True

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover
        state = (
            "pending"
            if self._value is PENDING
            else ("processed" if self.processed else "triggered")
        )
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed delay; scheduled on creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, NORMAL, delay)


class PooledTimeout(Timeout):
    """A :class:`Timeout` recycled through the simulator's free list.

    The run loop returns every processed ``PooledTimeout`` to
    ``Simulator._timeout_pool``, where :meth:`Simulator.pooled_timeout`
    re-arms it instead of allocating a fresh event.  That makes it
    strictly single-use from the caller's perspective: yield it once
    and drop it.  Holding a reference past its firing reads whatever
    the *next* reservation wrote into it.  Internal fast paths
    (:meth:`FifoStation.run`, :meth:`Network.transfer`) honour this;
    user code should keep calling :meth:`Simulator.timeout`.
    """

    __slots__ = ()


class Condition(Event):
    """An event that triggers from the states of a set of sub-events.

    ``evaluate(events, count)`` decides when: it receives the full list
    and the number already triggered OK.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for ev in self._events:
            if ev.sim is not sim:
                raise ValueError("events from different simulators")

        if not self._events:
            self.succeed(self._collect())
            return
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        """Values of all triggered-OK sub-events, in creation order."""
        return ConditionValue(
            {ev: ev._value for ev in self._events if ev.triggered and ev._ok}
        )

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class ConditionValue(dict):
    """Mapping of sub-event -> value for a fired :class:`Condition`."""

    def first(self) -> Any:
        """Value of the first (creation-order) fired sub-event."""
        return next(iter(self.values()))


class AllOf(Condition):
    """Triggers when *all* sub-events have triggered OK."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, lambda evs, n: n == len(evs), events)


class AnyOf(Condition):
    """Triggers when *any* sub-event has triggered OK."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, lambda evs, n: n >= 1, events)
