"""Deterministic, named random streams.

Every stochastic component draws from its own named stream derived from
one master seed, so adding a new component (or reordering draws inside
one) never perturbs the others — a standard trick for reproducible
parallel-systems simulation.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0xC0FFEE) -> None:
        self.master_seed = int(master_seed)
        self._seq = np.random.SeedSequence(self.master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from the master seed and the name, so the
            # mapping is stable regardless of creation order.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(16, b"\0")[:16], dtype=np.uint32
            )
            child = np.random.SeedSequence(
                entropy=self.master_seed, spawn_key=tuple(int(x) for x in digest)
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; the next `stream()` calls start fresh."""
        self._streams.clear()
