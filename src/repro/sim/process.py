"""Generator-based simulation processes.

A process is a Python generator that ``yield``\\ s :class:`Event` objects;
the engine resumes it with the event's value (or throws the event's
exception) when the event is processed.  The :class:`Process` wrapper is
itself an event that fires when the generator returns, so processes can
wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event, PENDING, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

ProcessGenerator = Generator[Event, Any, Any]


class Initialize(Event):
    """Urgent event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, URGENT)


class Process(Event):
    """A running simulation process; also an event (fires on return)."""

    __slots__ = ("_generator", "_target", "name", "serial", "parent")

    def __init__(
        self, sim: "Simulator", generator: ProcessGenerator, name: str | None = None
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Event | None = Initialize(sim, self)
        self.name = name or getattr(generator, "__name__", "process")
        sim._proc_seq += 1
        #: Per-sim creation serial (deterministic across identical runs).
        self.serial = sim._proc_seq
        #: The process that spawned this one (None when created from
        #: outside the run loop).  Observers walk this chain to
        #: attribute work done by helper processes (multi-get batches,
        #: fill reads, fan-outs) to the client op that spawned them.
        self.parent: "Process" | None = sim._active_process

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    @property
    def target(self) -> Event | None:
        """The event this process currently waits on (None if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        A dead process cannot be interrupted; interrupting the currently
        active process is an error (a process cannot interrupt itself
        synchronously).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self.name} has terminated; cannot interrupt")
        if self is self.sim.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._deliver_interrupt)
        self.sim._schedule(event, URGENT)

    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return  # terminated before the interrupt was delivered
        # Detach from the event we were waiting on, then resume with the
        # failure.  The original event may still fire later; the process
        # simply no longer listens to it.
        if (
            self._target is not None
            and self._target.callbacks is not None
            and self._resume in self._target.callbacks
        ):
            self._target.callbacks.remove(self._resume)
        self._resume(event)

    def _resume(self, event: Event) -> None:
        # The engine's hottest code path: every event delivery to every
        # process lands here.  The generator's bound methods and our own
        # resume callback are hoisted into locals once per delivery.
        sim = self.sim
        sim._active_process = self
        gen = self._generator
        send = gen.send
        try:
            while True:
                try:
                    if event._ok:
                        next_event = send(event._value)
                    else:
                        # The process handles (or not) the failure itself.
                        event._defused = True
                        next_event = gen.throw(event._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    break
                except BaseException as exc:
                    self.fail(exc)
                    break

                if not isinstance(next_event, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded a non-event: {next_event!r}"
                    )
                    try:
                        gen.throw(exc)
                    except StopIteration as stop:
                        self.succeed(stop.value)
                    except BaseException as e:
                        self.fail(e)
                    break

                callbacks = next_event.callbacks
                if callbacks is not None:
                    # Pending or triggered-but-unprocessed: wait for it.
                    callbacks.append(self._resume)
                    self._target = next_event
                    break
                # Already processed: continue immediately with its value.
                event = next_event
        finally:
            sim._active_process = None

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name} ({state})>"
