"""The discrete-event simulator core: clock, scheduler, and run loop.

Two scheduler backends sit behind the same :class:`Simulator` API:

* ``"heap"`` (default) — one global binary heap of
  ``(time, priority, seq, event)`` entries; fastest at small scale.
* ``"calendar"`` — a bucketed calendar queue with a spill heap for
  far-future events (:mod:`repro.sim.calendar`); O(1) inserts and
  near-O(1) pops for the short-delay timeout traffic that dominates
  large client populations.

Both backends pop entries in the identical strict total order (``seq``
is unique), so a run is byte-identical regardless of backend; choose by
wall-clock profile, never by semantics.
"""

from __future__ import annotations

import os
from functools import partial
from heapq import heappop, heappush
from itertools import repeat
from typing import Any, Iterable, Optional, Union

from repro.sim.calendar import CalendarQueue
from repro.sim.errors import EmptySchedule, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    PENDING,
    PooledTimeout,
    STOP,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

#: Recognised scheduler backend names.
SCHEDULERS = ("heap", "calendar")

#: Environment override consulted when ``Simulator(scheduler=None)``:
#: lets a whole test/experiment run A/B the backends without threading
#: a parameter through every call site (worker processes inherit it).
SCHEDULER_ENV = "REPRO_SCHEDULER"


def resolve_scheduler(name: Optional[str]) -> str:
    """Normalise a scheduler choice: ``None`` falls back to the
    ``REPRO_SCHEDULER`` environment variable, then to ``"heap"``."""
    if name is None:
        name = os.environ.get(SCHEDULER_ENV) or "heap"
    if name not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {name!r}; have {SCHEDULERS}")
    return name


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in seconds, starting at ``initial_time``.  Events at
    equal timestamps are ordered by priority then FIFO by scheduling
    sequence, so runs are exactly reproducible.

    Examples
    --------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(1.0)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    1.0
    """

    #: Cap on the recycled-timeout free list: a one-off burst of pooled
    #: timeouts (a stampede, a fan-out) must not pin thousands of dead
    #: event objects for the rest of the run.  Steady-state reuse needs
    #: only about one pooled event per concurrently-waiting process.
    TIMEOUT_POOL_MAX = 1024

    def __init__(
        self,
        initial_time: float = 0.0,
        scheduler: Union[str, CalendarQueue, None] = None,
    ) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        #: Calendar-queue backend, or ``None`` for the default heap.
        #: Hot paths branch on this once and never consult ``scheduler``.
        self._calendar: Optional[CalendarQueue]
        if isinstance(scheduler, CalendarQueue):
            self._calendar = scheduler
            self.scheduler = "calendar"
        else:
            self.scheduler = resolve_scheduler(scheduler)
            self._calendar = (
                CalendarQueue() if self.scheduler == "calendar" else None
            )
        self._seq = 0
        #: Monotone process counter; gives every Process a stable per-sim
        #: serial so observers (the span tracer) can key per-process
        #: state deterministically across runs.
        self._proc_seq = 0
        self._active_process: Process | None = None
        #: Free list of processed :class:`PooledTimeout` events; the run
        #: loop refills it, :meth:`pooled_timeout` drains it.
        self._timeout_pool: list[PooledTimeout] = []
        #: Whether analytic stations should accumulate per-visit wait
        #: statistics.  Observability bundles flip this on when a tracer
        #: or sampler is attached; unobserved experiment runs skip the
        #: bookkeeping on every reservation.  Bare simulators keep it on
        #: so direct station users (tests, notebooks) see their stats.
        self.track_station_waits = True

    # -- public clock/state ----------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events (either backend)."""
        cal = self._calendar
        return len(self._heap) if cal is None else len(cal)

    # -- event factories --------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float) -> Timeout:
        """A recycled valueless timeout for internal one-shot waits.

        Semantically ``timeout(delay)``, but the event object is reused
        once processed (see :class:`PooledTimeout`).  Callers must yield
        it immediately and never retain it past its firing; *delay* is
        trusted to be non-negative.
        """
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = None
            ev.delay = delay
            self._seq += 1
            entry = (self._now + delay, NORMAL, self._seq, ev)
            cal = self._calendar
            if cal is None:
                heappush(self._heap, entry)
            else:
                cal.push(entry)
            return ev
        return PooledTimeout(self, delay)

    def process(self, generator: ProcessGenerator, name: str | None = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(
        self,
        event: Event,
        priority: int = NORMAL,
        delay: float = 0.0,
        *,
        at: float | None = None,
    ) -> None:
        """Schedule *event*; every schedule entry's sequence number is
        minted here.  ``at`` pins an exact absolute timestamp
        (``now + delay`` is not float-exact when ``delay`` was derived
        from ``at - now``).
        """
        self._seq += 1
        entry = (self._now + delay if at is None else at, priority, self._seq, event)
        cal = self._calendar
        if cal is None:
            heappush(self._heap, entry)
        else:
            cal.push(entry)

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        cal = self._calendar
        if cal is None:
            return self._heap[0][0] if self._heap else float("inf")
        return cal.peek_time()

    def _run_loop(self, limit: int = -1) -> int:
        """Pop and dispatch events until the schedule empties or *limit*
        events have been processed (negative = unbounded).

        This is the **only** event-processing path in the engine:
        :meth:`run` calls it unbounded, :meth:`step` calls it with
        ``limit=1``, so the two cannot drift as the scheduler backend
        becomes pluggable.  Returns the number of events processed.

        The loop is the kernel's hottest code; everything it touches is
        bound to locals once.  Both backends surface exhaustion as
        ``IndexError`` from *pop*, which is caught *around the pop
        alone* — an ``IndexError`` escaping a user callback still
        propagates.
        """
        cal = self._calendar
        if cal is None:
            # `partial` binds the heap at C level: per-pop cost is
            # indistinguishable from an inline `heappop(self._heap)`.
            pop = partial(heappop, self._heap)
        else:
            pop = cal.pop
        pool = self._timeout_pool
        pool_max = self.TIMEOUT_POOL_MAX
        pooled_cls = PooledTimeout
        processed = 0
        # `repeat` is a C-level iterator: the bounded/unbounded budget
        # costs nothing per iteration, unlike an int countdown.
        for _ in repeat(None) if limit < 0 else repeat(None, limit):
            try:
                when, _, _, event = pop()
            except IndexError:
                break
            processed += 1
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if event._ok:
                if event.__class__ is pooled_cls:
                    if len(pool) < pool_max:
                        pool.append(event)
            elif not event._defused:
                # Nobody handled the failure: surface it.
                raise event._value
        return processed

    def step(self) -> None:
        """Process exactly one event (advance the clock to it)."""
        if not self._run_loop(1):
            raise EmptySchedule("no more events")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap empties, *until* time passes, or *until*
        event fires.  Returns the until-event's value when given one.
        """
        stop_event: Event | None = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                return stop_event._value
            stop_event.callbacks.append(self._stop_on)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} is in the past (now={self._now})")
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            # STOP priority: the clock halts *before* any user event
            # scheduled at `at`.
            self._schedule(stop_event, STOP, at=at)
            stop_event.callbacks.append(self._stop_on)

        try:
            self._run_loop()
        except StopSimulation as stop:
            return stop.value

        if until is not None and isinstance(until, Event) and until._value is PENDING:
            raise EmptySchedule(
                "simulation ran out of events before the until-event fired"
            )
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        raise StopSimulation(event._value)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Simulator t={self._now:.9f} pending={self.pending} "
            f"scheduler={self.scheduler}>"
        )
