"""The discrete-event simulator core: clock, heap, and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Iterable

from repro.sim.errors import EmptySchedule, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    PENDING,
    PooledTimeout,
    STOP,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in seconds, starting at ``initial_time``.  Events at
    equal timestamps are ordered by priority then FIFO by scheduling
    sequence, so runs are exactly reproducible.

    Examples
    --------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(1.0)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    1.0
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        #: Monotone process counter; gives every Process a stable per-sim
        #: serial so observers (the span tracer) can key per-process
        #: state deterministically across runs.
        self._proc_seq = 0
        self._active_process: Process | None = None
        #: Free list of processed :class:`PooledTimeout` events; the run
        #: loop refills it, :meth:`pooled_timeout` drains it.
        self._timeout_pool: list[PooledTimeout] = []
        #: Whether analytic stations should accumulate per-visit wait
        #: statistics.  Observability bundles flip this on when a tracer
        #: or sampler is attached; unobserved experiment runs skip the
        #: bookkeeping on every reservation.  Bare simulators keep it on
        #: so direct station users (tests, notebooks) see their stats.
        self.track_station_waits = True

    # -- public clock/state ----------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event factories --------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float) -> Timeout:
        """A recycled valueless timeout for internal one-shot waits.

        Semantically ``timeout(delay)``, but the event object is reused
        once processed (see :class:`PooledTimeout`).  Callers must yield
        it immediately and never retain it past its firing; *delay* is
        trusted to be non-negative.
        """
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = None
            ev.delay = delay
            self._seq += 1
            heappush(self._heap, (self._now + delay, NORMAL, self._seq, ev))
            return ev
        return PooledTimeout(self, delay)

    def process(self, generator: ProcessGenerator, name: str | None = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(
        self,
        event: Event,
        priority: int = NORMAL,
        delay: float = 0.0,
        *,
        at: float | None = None,
    ) -> None:
        """Schedule *event*; every heap entry's sequence number is minted
        here.  ``at`` pins an exact absolute timestamp (``now + delay``
        is not float-exact when ``delay`` was derived from ``at - now``).
        """
        self._seq += 1
        heappush(
            self._heap,
            (self._now + delay if at is None else at, priority, self._seq, event),
        )

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advance the clock to it)."""
        try:
            when, _, _, event = heappop(self._heap)
        except IndexError:
            raise EmptySchedule("no more events") from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok:
            if event.__class__ is PooledTimeout:
                self._timeout_pool.append(event)
        elif not event._defused:
            # Nobody handled the failure: surface it.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap empties, *until* time passes, or *until*
        event fires.  Returns the until-event's value when given one.
        """
        stop_event: Event | None = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                return stop_event._value
            stop_event.callbacks.append(self._stop_on)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} is in the past (now={self._now})")
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            # STOP priority: the clock halts *before* any user event
            # scheduled at `at`.
            self._schedule(stop_event, STOP, at=at)
            stop_event.callbacks.append(self._stop_on)

        # Hot loop: step() inlined with the heap, pop and pool bound to
        # locals.  `heap` and `pool` are never rebound elsewhere, so the
        # local aliases stay valid while callbacks schedule new events.
        heap = self._heap
        pool = self._timeout_pool
        pop = heappop
        pooled_cls = PooledTimeout
        try:
            while heap:
                when, _, _, event = pop(heap)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok:
                    if event.__class__ is pooled_cls:
                        pool.append(event)
                elif not event._defused:
                    # Nobody handled the failure: surface it.
                    raise event._value
        except StopSimulation as stop:
            return stop.value

        if until is not None and isinstance(until, Event) and until._value is PENDING:
            raise EmptySchedule(
                "simulation ran out of events before the until-event fired"
            )
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        raise StopSimulation(event._value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Simulator t={self._now:.9f} pending={len(self._heap)}>"
