"""Measurement probes: timers, trace logs, time-series samplers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.util.stats import Counter, OnlineStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


@dataclass
class TraceRecord:
    """One trace event: (time, source, tag, payload)."""

    time: float
    source: str
    tag: str
    payload: Any = None


class Tracer:
    """Optional event-trace collector.

    Disabled by default (tracing millions of DES events is expensive);
    enable for debugging or fine-grained analysis.
    """

    def __init__(self, sim: "Simulator", enabled: bool = False, limit: int = 1_000_000):
        self.sim = sim
        self.enabled = enabled
        self.limit = limit
        self.records: list[TraceRecord] = []

    def log(self, source: str, tag: str, payload: Any = None) -> None:
        if not self.enabled or len(self.records) >= self.limit:
            return
        self.records.append(TraceRecord(self.sim.now, source, tag, payload))

    def filter(self, source: str | None = None, tag: str | None = None):
        return [
            r
            for r in self.records
            if (source is None or r.source == source) and (tag is None or r.tag == tag)
        ]


class Metrics:
    """Per-component metrics registry: counters + latency stats by name."""

    def __init__(self) -> None:
        self.counters = Counter()
        self.timers: dict[str, OnlineStats] = {}
        self.series: dict[str, list[tuple[float, float]]] = {}

    def count(self, name: str, by: int = 1) -> None:
        self.counters.inc(name, by)

    def observe(self, name: str, value: float) -> None:
        stats = self.timers.get(name)
        if stats is None:
            stats = self.timers[name] = OnlineStats()
        stats.add(value)

    def sample(self, name: str, t: float, value: float) -> None:
        self.series.setdefault(name, []).append((t, value))

    def timer(self, name: str) -> OnlineStats:
        stats = self.timers.get(name)
        if stats is None:
            stats = self.timers[name] = OnlineStats()
        return stats

    def merge(self, other: "Metrics") -> None:
        self.counters.merge(other.counters)
        for name, stats in other.timers.items():
            self.timer(name).merge(stats)
        for name, pts in other.series.items():
            self.series.setdefault(name, []).extend(pts)
