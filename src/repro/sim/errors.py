"""Exception types raised by the discrete-event engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for engine-level errors (misuse of the API)."""


class EmptySchedule(SimulationError):
    """`run()` was asked to advance but no events remain."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` at an event."""

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The interrupting party supplies ``cause``; the interrupted process
    receives this exception at its current ``yield``.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        return self.args[0]
