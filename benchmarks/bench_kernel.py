"""Wall-clock kernel microbenchmarks (events/sec), pytest-benchmark view.

These wrap the same frozen workloads as ``repro bench`` /
``repro.bench.kernel`` — the bare DES kernel, the five-station network
hop, and a fixed fig6-style harness sweep — so the kernel's throughput
shows up alongside the figure benchmarks.  The authoritative trajectory
lives in ``BENCH_kernel.json`` (written by ``repro bench``); this file
exists for interactive profiling::

    PYTHONPATH=src pytest benchmarks/bench_kernel.py --benchmark-only
"""

from repro.bench.kernel import (
    HOP_MSGS,
    HOP_SENDERS,
    KERNEL_ITERS,
    KERNEL_PROCS,
    SWEEP_EXPERIMENT,
    SWEEP_SCALE,
    _hop_workload,
    _kernel_workload,
)
from repro.harness import get


def test_kernel_events_per_sec(benchmark):
    events = benchmark(_kernel_workload)
    benchmark.extra_info["events_per_run"] = events
    benchmark.extra_info["workload"] = (
        f"{KERNEL_PROCS} procs x {KERNEL_ITERS} station reservations"
    )
    assert events > 0


def test_hop_events_per_sec(benchmark):
    events = benchmark(_hop_workload)
    benchmark.extra_info["events_per_run"] = events
    benchmark.extra_info["workload"] = (
        f"{HOP_SENDERS} senders x {HOP_MSGS} five-station transfers"
    )
    assert events > 0


def test_sweep_seconds(benchmark):
    exp = get(SWEEP_EXPERIMENT)
    result = benchmark.pedantic(exp.run, args=(SWEEP_SCALE,), rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = f"{SWEEP_EXPERIMENT}@{SWEEP_SCALE}"
    assert result.checks
