"""Wall-clock kernel microbenchmarks (events/sec), pytest-benchmark view.

These wrap the same frozen workloads as ``repro bench`` /
``repro.bench.kernel`` — the bare DES kernel, the five-station network
hop, and a fixed fig6-style harness sweep — so the kernel's throughput
shows up alongside the figure benchmarks.  The authoritative trajectory
lives in ``BENCH_kernel.json`` (written by ``repro bench``); this file
exists for interactive profiling::

    PYTHONPATH=src pytest benchmarks/bench_kernel.py --benchmark-only
"""

from repro.bench.kernel import (
    HOP_MSGS,
    HOP_SENDERS,
    KERNEL_ITERS,
    KERNEL_PROCS,
    SWEEP_EXPERIMENT,
    SWEEP_SCALE,
    _hop_workload,
    _kernel_workload,
)
from repro.harness import get


def test_kernel_events_per_sec(benchmark):
    events = benchmark(_kernel_workload)
    benchmark.extra_info["events_per_run"] = events
    benchmark.extra_info["workload"] = (
        f"{KERNEL_PROCS} procs x {KERNEL_ITERS} station reservations"
    )
    assert events > 0


def test_hop_events_per_sec(benchmark):
    events = benchmark(_hop_workload)
    benchmark.extra_info["events_per_run"] = events
    benchmark.extra_info["workload"] = (
        f"{HOP_SENDERS} senders x {HOP_MSGS} five-station transfers"
    )
    assert events > 0


def test_sweep_seconds(benchmark):
    exp = get(SWEEP_EXPERIMENT)
    result = benchmark.pedantic(exp.run, args=(SWEEP_SCALE,), rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = f"{SWEEP_EXPERIMENT}@{SWEEP_SCALE}"
    assert result.checks


# -- key-string construction (the CMCache/SMCache hot loop) -----------------
# A steady workload formats the same (path, block_offset) keys millions
# of times; KeyCache turns the f-string format into a dict probe.  The
# two benchmarks below share a workload shape so the win is readable
# straight off the comparison table.
KEY_PATHS = [f"/bench/keys/dir{i % 8}/file{i}" for i in range(64)]
KEY_BLOCKS = [i * 2048 for i in range(32)]
KEY_ROUNDS = 8


def _format_keys_raw() -> int:
    from repro.core.keys import data_key, stat_key

    n = 0
    for _ in range(KEY_ROUNDS):
        for path in KEY_PATHS:
            stat_key(path)
            n += 1
            for off in KEY_BLOCKS:
                data_key(path, off)
                n += 1
    return n


def _format_keys_cached() -> int:
    from repro.core.keys import KeyCache

    kc = KeyCache()
    n = 0
    for _ in range(KEY_ROUNDS):
        for path in KEY_PATHS:
            kc.stat_key(path)
            n += 1
            for off in KEY_BLOCKS:
                kc.data_key(path, off)
                n += 1
    return n


def test_key_format_raw(benchmark):
    n = benchmark(_format_keys_raw)
    benchmark.extra_info["keys_per_run"] = n
    assert n == KEY_ROUNDS * len(KEY_PATHS) * (1 + len(KEY_BLOCKS))


def test_key_format_cached(benchmark):
    n = benchmark(_format_keys_cached)
    benchmark.extra_info["keys_per_run"] = n
    assert n == KEY_ROUNDS * len(KEY_PATHS) * (1 + len(KEY_BLOCKS))
