"""Fig 1(a)/(b): multi-client IOzone read bandwidth over NFS.

Regenerates the motivation experiment: read bandwidth vs client count
for NFS/RDMA, NFS/TCP-on-IPoIB and NFS/TCP-on-GigE with two server
memory sizes.  The paper's headline: "The bandwidth available to the
clients seems to be related to the amount of memory on the server and
falls off as the server runs out of memory."
"""

from conftest import run_experiment


def test_fig1_nfs_read_bandwidth(benchmark, scale):
    run_experiment(benchmark, "fig1", scale)
