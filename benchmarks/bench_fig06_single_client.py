"""Fig 6(a)/(b)/(c): single-client read and write latency.

(a) small records: IMCa block sizes 256/2K/8K vs NoCache vs Lustre
    (45%/59% reductions at 1 byte; §5.3);
(b) large records: NoCache overtakes small-block IMCa;
(c) write latency: the synchronous read-back penalty and its removal
    by the update thread.
"""

from conftest import run_experiment


def test_fig6a_read_latency_small_records(benchmark, scale):
    run_experiment(benchmark, "fig6a", scale)


def test_fig6b_read_latency_large_records(benchmark, scale):
    run_experiment(benchmark, "fig6b", scale)


def test_fig6c_write_latency(benchmark, scale):
    run_experiment(benchmark, "fig6c", scale)
