"""Fig 8(a)-(d): read latency varying the number of clients, 1 MCD.

Paper: "The Read latency at 32 clients is higher than with one client
and increases with increase in record size", driven by growing MCD
capacity misses.
"""

from conftest import run_experiment


def test_fig8_client_scaling(benchmark, scale):
    run_experiment(benchmark, "fig8", scale)
