"""Fig 9: IOzone read throughput with 1/2/4 MCDs (modulo placement).

Paper headline: "a IOzone Read Throughput of upto 868 MB/s with 8
IOzone threads and 4 MCDs ... almost twice the corresponding number
without the cache (417 MB/s) and Lustre-1DS (Cold) (325 MB/s)."
"""

from conftest import run_experiment


def test_fig9_iozone_throughput(benchmark, scale):
    run_experiment(benchmark, "fig9", scale)
