"""Ablation benches: the §4.3/§4.4 design choices and §7 future work.

* block-size tradeoff (Fig 3 / §4.3.1)
* CRC32 vs modulo placement (§5.5 / §7)
* synchronous vs threaded SMCache updates (Fig 6(c))
* MCD failure transparency (§4.4)
* IPoIB vs native RDMA for cache traffic (§7)
"""

from conftest import run_experiment


def test_ablation_blocksize(benchmark, scale):
    run_experiment(benchmark, "ablation-blocksize", scale)


def test_ablation_hashing(benchmark, scale):
    run_experiment(benchmark, "ablation-hashing", scale)


def test_ablation_threading(benchmark, scale):
    run_experiment(benchmark, "ablation-threading", scale)


def test_ablation_failures(benchmark, scale):
    run_experiment(benchmark, "ablation-failures", scale)


def test_ablation_transport(benchmark, scale):
    run_experiment(benchmark, "ablation-transport", scale)


def test_ablation_client_cache(benchmark, scale):
    run_experiment(benchmark, "ablation-client-cache", scale)


def test_ablation_elasticity(benchmark, scale):
    run_experiment(benchmark, "ablation-elasticity", scale)


def test_motivation_smallfiles(benchmark, scale):
    run_experiment(benchmark, "motivation-smallfiles", scale)


def test_motivation_trace(benchmark, scale):
    run_experiment(benchmark, "motivation-trace", scale)
