"""Fig 7(a)/(b): read latency at high client count, varying MCDs.

Paper headline: "there is reduction of 82% in the latency when four
MCDs are introduced over the NoCache case for a 1 byte Read."
"""

from conftest import run_experiment


def test_fig7_multiclient_read_latency(benchmark, scale):
    run_experiment(benchmark, "fig7", scale)
