"""Shared plumbing for the figure benchmarks.

Each ``bench_figXX`` file regenerates one paper figure through the
experiment harness and reports the series via pytest-benchmark's
``extra_info``.  Scale defaults to ``smoke`` so the whole suite runs in
about a minute; set ``REPRO_BENCH_SCALE=default`` (or ``paper``) for
publication-shaped curves::

    REPRO_BENCH_SCALE=default pytest benchmarks/ --benchmark-only
"""

import os

import pytest

from repro.harness import get, render_series_table


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if value not in ("smoke", "default", "paper"):
        raise ValueError(f"bad REPRO_BENCH_SCALE {value!r}")
    return value


def run_experiment(benchmark, exp_id: str, scale: str):
    """Run one experiment under pytest-benchmark and record its series."""
    exp = get(exp_id)
    result = benchmark.pedantic(exp.run, args=(scale,), rounds=1, iterations=1)
    benchmark.extra_info["figure"] = exp.figure
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["checks"] = [
        ("PASS" if c.passed else "FAIL", c.name, c.detail) for c in result.checks
    ]
    table = render_series_table(result.x_name, result.x_values, result.series)
    print(f"\n== {exp.figure}: {exp.title} [{scale}] ==")
    print(table)
    for c in result.checks:
        print(f"  [{'PASS' if c.passed else 'FAIL'}] {c.name} -- {c.detail}")
    # Structural sanity must hold at any scale; the full claim set is
    # evaluated (and expected green) at default/paper scale.
    passed = sum(1 for c in result.checks if c.passed)
    if scale == "smoke":
        assert passed >= len(result.checks) / 2, result.summary()
    else:
        assert result.all_passed, result.summary()
    return result
