"""Fig 5: stat time vs clients for NoCache / MCD(n) / Lustre-4DS.

Paper headline: "At 64 clients, with 1 MCD, there is an 82% reduction
in the time required to complete the stat operations as compared to
without the cache ... using GlusterFS with 6 MCDs, the time ... is 86%
lower than Lustre with 4 DSs."
"""

from conftest import run_experiment


def test_fig5_stat_scaling(benchmark, scale):
    run_experiment(benchmark, "fig5", scale)
