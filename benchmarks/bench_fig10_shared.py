"""Fig 10: read latency to a shared file (one writer, many readers).

Paper headline: "At 32 nodes, there is a 45% reduction in latency with
IMCa over the NoCache case ... IMCa provides benefit, that increases
with an increase in the number of nodes."
"""

from conftest import run_experiment


def test_fig10_shared_file_read_latency(benchmark, scale):
    run_experiment(benchmark, "fig10", scale)
